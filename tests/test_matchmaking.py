"""Unit tests for the repro.matchmaking closed loop.

Pool configuration, the four selection policies, the epoch engine's
bookkeeping invariants, assigned-population traffic synthesis, and the
facility-level occupancy/admission metrics in repro.core.facility.
"""

import numpy as np
import pytest

from repro.core.facility import (
    AdmissionStats,
    FacilityEnvelope,
    OccupancyStats,
    policy_multiplexing_gain,
)
from repro.fleet.profiles import hosting_facility
from repro.fleet.scenario import FleetScenario
from repro.matchmaking import (
    POLICIES,
    PoolConfig,
    assigned_population,
    make_policy,
    simulate_matchmaking,
)
from repro.matchmaking.policies import (
    CapacityAwarePolicy,
    LeastLoadedPolicy,
    RandomPolicy,
    StickyPolicy,
)
from repro.matchmaking.traffic import AssignedSeriesTask, simulate_assigned_series

#: Small saturating facility shared by most tests.
N_SERVERS = 3
HORIZON = 900.0
EPOCH = 60.0


@pytest.fixture(scope="module")
def small_fleet():
    return hosting_facility(n_servers=N_SERVERS, duration=HORIZON, seed=3)


@pytest.fixture(scope="module")
def saturating_config(small_fleet):
    # short sessions + high demand ratio: plenty of churn and pressure
    return PoolConfig.for_fleet(
        small_fleet,
        demand_ratio=3.0,
        epoch_length=EPOCH,
        session_duration_mean=180.0,
        session_duration_min=5.0,
    )


@pytest.fixture(scope="module")
def results(small_fleet, saturating_config):
    return {
        name: simulate_matchmaking(small_fleet, name, saturating_config)
        for name in POLICIES
    }


class TestPoolConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PoolConfig(pool_size=0, attempt_rate_per_player=0.1, horizon=60.0)
        with pytest.raises(ValueError):
            PoolConfig(pool_size=10, attempt_rate_per_player=0.0, horizon=60.0)
        with pytest.raises(ValueError):
            PoolConfig(
                pool_size=10,
                attempt_rate_per_player=0.1,
                horizon=60.0,
                epoch_length=120.0,
            )
        with pytest.raises(ValueError):
            PoolConfig(
                pool_size=10,
                attempt_rate_per_player=0.1,
                horizon=60.0,
                retry_probability=1.5,
            )

    def test_for_fleet_matches_horizon_and_phase(self, small_fleet):
        config = PoolConfig.for_fleet(small_fleet)
        assert config.horizon == small_fleet.horizon
        assert config.diurnal_phase == small_fleet.base_profile.diurnal_phase
        assert config.pool_size > sum(
            p.max_players for p in small_fleet.server_profiles()
        )

    def test_for_fleet_rejects_pool_below_capacity(self, small_fleet):
        with pytest.raises(ValueError):
            PoolConfig.for_fleet(small_fleet, pool_size=1)

    def test_diurnal_modulation_moves_the_rate(self):
        config = PoolConfig(
            pool_size=10,
            attempt_rate_per_player=0.1,
            horizon=86400.0,
            diurnal_amplitude=0.5,
        )
        rates = [config.attempt_rate_at(t) for t in np.arange(0, 86400, 3600)]
        assert max(rates) > 1.5 * min(rates)
        flat = config.replace(diurnal_amplitude=0.0)
        assert flat.attempt_rate_at(0.0) == flat.attempt_rate_at(43200.0)


class TestPolicies:
    def test_registry_names(self):
        assert list(POLICIES) == [
            "random", "least_loaded", "sticky", "capacity_aware",
        ]
        for name in POLICIES:
            assert make_policy(name).name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError):
            make_policy("zergrush")

    def test_instance_passthrough(self):
        policy = LeastLoadedPolicy()
        assert make_policy(policy) is policy

    def test_least_loaded_picks_most_free(self):
        occupancy = np.array([3, 1, 2])
        capacities = np.array([4, 4, 4])
        rng = np.random.default_rng(0)
        assert LeastLoadedPolicy().select(occupancy, capacities, -1, rng) == 1

    def test_sticky_prefers_previous_server_with_room(self):
        occupancy = np.array([3, 1, 2])
        capacities = np.array([4, 4, 4])
        rng = np.random.default_rng(0)
        assert StickyPolicy().select(occupancy, capacities, 2, rng) == 2
        # previous full: falls back to some server with room
        occupancy = np.array([1, 1, 4])
        chosen = StickyPolicy().select(occupancy, capacities, 2, rng)
        assert chosen in (0, 1)

    def test_sticky_refuses_when_facility_full(self):
        occupancy = np.array([4, 4])
        capacities = np.array([4, 4])
        rng = np.random.default_rng(0)
        assert StickyPolicy().select(occupancy, capacities, 0, rng) is None

    def test_capacity_aware_refuses_only_when_full(self):
        capacities = np.array([2, 2])
        rng = np.random.default_rng(0)
        policy = CapacityAwarePolicy()
        assert policy.retry_on_reject
        assert policy.select(np.array([2, 1]), capacities, -1, rng) == 1
        assert policy.select(np.array([2, 2]), capacities, -1, rng) is None

    def test_random_is_blind_to_load(self):
        occupancy = np.array([5, 0])
        capacities = np.array([5, 5])
        rng = np.random.default_rng(1)
        picks = {
            RandomPolicy().select(occupancy, capacities, -1, rng)
            for _ in range(64)
        }
        assert picks == {0, 1}


class TestEngineInvariants:
    def test_capacity_never_exceeded(self, results):
        for name, result in results.items():
            capacities = np.asarray(result.capacities)[:, None]
            assert np.all(result.occupancy <= capacities), name
            assert np.all(result.occupancy >= 0), name

    def test_admission_accounting(self, results):
        for result in results.values():
            stats = result.admission
            assert stats.attempts == stats.admitted + stats.rejected
            assert stats.rejected == stats.balked + stats.retried
            assert stats.admitted == sum(len(s) for s in result.sessions)
            assert int(result.per_server_attempts.sum()) >= stats.admitted

    def test_only_capacity_aware_retries(self, results):
        assert results["capacity_aware"].admission.retried > 0
        for name in ("random", "least_loaded", "sticky"):
            assert results[name].admission.retried == 0, name

    def test_sessions_within_horizon_and_consistent(self, results):
        for result in results.values():
            for server, session_list in enumerate(result.sessions):
                for record in session_list:
                    assert 0.0 <= record.start < record.end <= HORIZON
                    assert 0 <= record.client_id < result.config.pool_size

    def test_no_player_connected_twice_at_once(self, results):
        for name, result in results.items():
            events = []
            for session_list in result.sessions:
                for record in session_list:
                    events.append((record.start, 1, record.client_id))
                    events.append((record.end, 0, record.client_id))
            events.sort()
            connected = set()
            for _, kind, client in events:
                if kind == 0:
                    connected.discard(client)
                else:
                    assert client not in connected, name
                    connected.add(client)

    def test_saturating_demand_pins_least_loaded(self, results):
        stats = results["least_loaded"].occupancy_stats()
        assert stats.utilization > 0.8

    def test_sticky_affinity_beats_random(self, results):
        assert (
            results["sticky"].affinity_fraction
            > results["random"].affinity_fraction
        )

    def test_least_loaded_rejects_no_more_than_random(self, results):
        assert (
            results["least_loaded"].rejection_rate
            <= results["random"].rejection_rate
        )

    def test_determinism_and_seed_sensitivity(self, small_fleet, saturating_config):
        a = simulate_matchmaking(small_fleet, "sticky", saturating_config)
        b = simulate_matchmaking(small_fleet, "sticky", saturating_config)
        assert np.array_equal(a.occupancy, b.occupancy)
        assert a.sessions == b.sessions
        c = simulate_matchmaking(
            small_fleet, "sticky", saturating_config, seed=99
        )
        assert not np.array_equal(a.occupancy, c.occupancy)

    def test_horizon_mismatch_rejected(self, small_fleet, saturating_config):
        with pytest.raises(ValueError):
            simulate_matchmaking(
                small_fleet,
                "random",
                saturating_config.replace(horizon=HORIZON / 2, epoch_length=30.0),
            )


class TestAssignedTraffic:
    def test_assigned_population_roundtrip(self, results, small_fleet):
        result = results["least_loaded"]
        profile = small_fleet.server_profile(0)
        population = assigned_population(profile, result.sessions[0])
        assert population.established_count == len(result.sessions[0])
        assert population.attempted_count == len(result.sessions[0])
        assert population.unique_attempting == population.unique_establishing
        starts = [s.start for s in population.sessions]
        assert starts == sorted(starts)

    def test_empty_assignment_means_silent_server(self, small_fleet):
        profile = small_fleet.server_profile(0)
        series = simulate_assigned_series(
            AssignedSeriesTask(profile=profile, sessions=(), seed=7)
        )
        assert len(series) == int(HORIZON)
        # no sessions -> no structural rate; only sub-packet clipped
        # noise remains (a populated server emits ~1e5+ packets here)
        assert series.total_counts.sum() < 1.0

    def test_fleet_scenario_from_matchmaking_sums_servers(self, results):
        result = results["least_loaded"]
        scenario = FleetScenario.from_matchmaking(result)
        aggregate = scenario.aggregate_per_second(workers=1)
        total = sum(
            series.total_counts.sum()
            for series in scenario.iter_server_series()
        )
        assert aggregate.total_counts.sum() == pytest.approx(total)

    def test_assignment_length_validated(self, results, small_fleet):
        with pytest.raises(ValueError):
            FleetScenario(small_fleet, assignments=((),))


class TestFacilityMetrics:
    def test_admission_stats_validation(self):
        with pytest.raises(ValueError):
            AdmissionStats(attempts=5, admitted=3, rejected=1)
        with pytest.raises(ValueError):
            AdmissionStats(attempts=5, admitted=3, rejected=2, balked=2, retried=1)
        stats = AdmissionStats(
            attempts=5, admitted=3, rejected=2, balked=1, retried=1
        )
        assert stats.rejection_rate == pytest.approx(0.4)
        assert stats.retry_rate == pytest.approx(0.5)
        assert AdmissionStats(0, 0, 0).rejection_rate == 0.0

    def test_occupancy_stats_from_matrix(self):
        occupancy = np.array([[2, 2, 1], [0, 1, 1]])
        capacities = np.array([2, 2])
        stats = OccupancyStats.from_occupancy(occupancy, capacities)
        assert stats.mean_occupancy == pytest.approx(7 / 6)
        assert stats.utilization == pytest.approx(7 / 12)
        assert stats.full_fraction == pytest.approx(2 / 6)
        assert stats.facility_full_fraction == 0.0
        assert stats.distribution.sum() == pytest.approx(1.0)
        assert stats.distribution[2] == pytest.approx(2 / 6)
        assert stats.quantile(0.0) == 0
        assert stats.quantile(1.0) == 2

    def test_occupancy_stats_shape_validated(self):
        with pytest.raises(ValueError):
            OccupancyStats.from_occupancy(np.zeros((2, 3)), np.array([4]))

    def test_policy_multiplexing_gain(self):
        def envelope(peak, mean):
            return FacilityEnvelope(
                duration=60.0,
                percentile=99.0,
                mean_pps=mean,
                peak_pps=peak,
                mean_bandwidth_bps=1.0,
                peak_bandwidth_bps=1.0,
            )

        smooth = envelope(110.0, 100.0)
        bursty = envelope(200.0, 100.0)
        assert policy_multiplexing_gain(bursty, smooth) == pytest.approx(
            2.0 / 1.1
        )
        assert policy_multiplexing_gain(smooth, smooth) == pytest.approx(1.0)
