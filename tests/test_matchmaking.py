"""Unit tests for the repro.matchmaking closed loop.

Pool configuration (regions included), the six selection policies, the
RTT geometry, the epoch engine's bookkeeping invariants,
assigned-population traffic synthesis, and the facility-level
occupancy/admission/latency metrics in repro.core.facility.
"""

import numpy as np
import pytest

from repro.core.facility import (
    AdmissionStats,
    FacilityEnvelope,
    LatencyStats,
    OccupancyStats,
    occupancy_rtt_frontier,
    policy_multiplexing_gain,
)
from repro.fleet.profiles import hosting_facility
from repro.fleet.scenario import FleetScenario
from repro.matchmaking import (
    POLICIES,
    RTT_PROFILES,
    PlayerTraits,
    PoolConfig,
    RegionProfile,
    RttMatrix,
    RttProfile,
    SelectionPolicy,
    assigned_population,
    make_policy,
    make_rtt_profile,
    simulate_matchmaking,
)
from repro.matchmaking.policies import (
    CapacityAwarePolicy,
    LatencyAwarePolicy,
    LeastLoadedPolicy,
    LowestRttPolicy,
    RandomPolicy,
    StickyPolicy,
)
from repro.matchmaking.traffic import AssignedSeriesTask, simulate_assigned_series

#: Small saturating facility shared by most tests.
N_SERVERS = 3
HORIZON = 900.0
EPOCH = 60.0


@pytest.fixture(scope="module")
def small_fleet():
    return hosting_facility(n_servers=N_SERVERS, duration=HORIZON, seed=3)


@pytest.fixture(scope="module")
def saturating_config(small_fleet):
    # short sessions + high demand ratio: plenty of churn and pressure
    return PoolConfig.for_fleet(
        small_fleet,
        demand_ratio=3.0,
        epoch_length=EPOCH,
        session_duration_mean=180.0,
        session_duration_min=5.0,
    )


@pytest.fixture(scope="module")
def results(small_fleet, saturating_config):
    return {
        name: simulate_matchmaking(small_fleet, name, saturating_config)
        for name in POLICIES
    }


class TestPoolConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PoolConfig(pool_size=0, attempt_rate_per_player=0.1, horizon=60.0)
        with pytest.raises(ValueError):
            PoolConfig(pool_size=10, attempt_rate_per_player=0.0, horizon=60.0)
        with pytest.raises(ValueError):
            PoolConfig(
                pool_size=10,
                attempt_rate_per_player=0.1,
                horizon=60.0,
                epoch_length=120.0,
            )
        with pytest.raises(ValueError):
            PoolConfig(
                pool_size=10,
                attempt_rate_per_player=0.1,
                horizon=60.0,
                retry_probability=1.5,
            )

    def test_for_fleet_matches_horizon_and_phase(self, small_fleet):
        config = PoolConfig.for_fleet(small_fleet)
        assert config.horizon == small_fleet.horizon
        assert config.diurnal_phase == small_fleet.base_profile.diurnal_phase
        assert config.pool_size > sum(
            p.max_players for p in small_fleet.server_profiles()
        )

    def test_for_fleet_rejects_pool_below_capacity(self, small_fleet):
        with pytest.raises(ValueError):
            PoolConfig.for_fleet(small_fleet, pool_size=1)

    def test_diurnal_modulation_moves_the_rate(self):
        config = PoolConfig(
            pool_size=10,
            attempt_rate_per_player=0.1,
            horizon=86400.0,
            diurnal_amplitude=0.5,
        )
        rates = [config.attempt_rate_at(t) for t in np.arange(0, 86400, 3600)]
        assert max(rates) > 1.5 * min(rates)
        flat = config.replace(diurnal_amplitude=0.0)
        assert flat.attempt_rate_at(0.0) == flat.attempt_rate_at(43200.0)


class TestPolicies:
    def test_registry_names(self):
        assert list(POLICIES) == [
            "random", "least_loaded", "sticky", "capacity_aware",
            "lowest_rtt", "latency_aware",
        ]
        for name in POLICIES:
            assert make_policy(name).name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError):
            make_policy("zergrush")

    def test_instance_passthrough(self):
        policy = LeastLoadedPolicy()
        assert make_policy(policy) is policy

    def test_least_loaded_picks_most_free(self):
        occupancy = np.array([3, 1, 2])
        capacities = np.array([4, 4, 4])
        rng = np.random.default_rng(0)
        assert LeastLoadedPolicy().select(occupancy, capacities, -1, rng) == 1

    def test_sticky_prefers_previous_server_with_room(self):
        occupancy = np.array([3, 1, 2])
        capacities = np.array([4, 4, 4])
        rng = np.random.default_rng(0)
        assert StickyPolicy().select(occupancy, capacities, 2, rng) == 2
        # previous full: falls back to some server with room
        occupancy = np.array([1, 1, 4])
        chosen = StickyPolicy().select(occupancy, capacities, 2, rng)
        assert chosen in (0, 1)

    def test_sticky_refuses_when_facility_full(self):
        occupancy = np.array([4, 4])
        capacities = np.array([4, 4])
        rng = np.random.default_rng(0)
        assert StickyPolicy().select(occupancy, capacities, 0, rng) is None

    def test_capacity_aware_refuses_only_when_full(self):
        capacities = np.array([2, 2])
        rng = np.random.default_rng(0)
        policy = CapacityAwarePolicy()
        assert policy.retry_on_reject
        assert policy.select(np.array([2, 1]), capacities, -1, rng) == 1
        assert policy.select(np.array([2, 2]), capacities, -1, rng) is None

    def test_random_is_blind_to_load(self):
        occupancy = np.array([5, 0])
        capacities = np.array([5, 5])
        rng = np.random.default_rng(1)
        picks = {
            RandomPolicy().select(occupancy, capacities, -1, rng)
            for _ in range(64)
        }
        assert picks == {0, 1}

    def test_lowest_rtt_picks_argmin_among_open(self):
        capacities = np.array([4, 4, 4])
        rng = np.random.default_rng(0)
        rtt = np.array([80.0, 10.0, 30.0])
        policy = LowestRttPolicy()
        # nearest server open: take it even if busier
        assert policy.select(np.array([0, 3, 0]), capacities, -1, rng, rtt=rtt) == 1
        # nearest full: next-lowest RTT wins
        assert policy.select(np.array([0, 4, 0]), capacities, -1, rng, rtt=rtt) == 2
        # facility full: refuse
        assert policy.select(np.array([4, 4, 4]), capacities, -1, rng, rtt=rtt) is None

    def test_lowest_rtt_breaks_ties_toward_free_slots(self):
        capacities = np.array([4, 4, 4])
        rng = np.random.default_rng(0)
        rtt = np.array([20.0, 20.0, 50.0])
        chosen = LowestRttPolicy().select(
            np.array([3, 1, 0]), capacities, -1, rng, rtt=rtt
        )
        assert chosen == 1

    def test_latency_aware_trades_slots_against_rtt(self):
        capacities = np.array([10, 10])
        rng = np.random.default_rng(0)
        rtt = np.array([10.0, 100.0])
        # ping-chasing beta: near server wins despite being busier
        near = LatencyAwarePolicy(alpha=0.1, beta=1.0).select(
            np.array([8, 0]), capacities, -1, rng, rtt=rtt
        )
        assert near == 0
        # occupancy-heavy alpha: the empty far server wins
        empty = LatencyAwarePolicy(alpha=10.0, beta=1.0).select(
            np.array([8, 0]), capacities, -1, rng, rtt=rtt
        )
        assert empty == 1

    def test_latency_aware_never_selects_full_server(self):
        capacities = np.array([2, 2])
        rng = np.random.default_rng(0)
        rtt = np.array([1.0, 500.0])
        policy = LatencyAwarePolicy()
        # the near server is full: must pick the distant open one
        assert policy.select(np.array([2, 0]), capacities, -1, rng, rtt=rtt) == 1
        assert policy.select(np.array([2, 2]), capacities, -1, rng, rtt=rtt) is None

    def test_latency_aware_weight_validation(self):
        with pytest.raises(ValueError):
            LatencyAwarePolicy(alpha=-1.0)
        with pytest.raises(ValueError):
            LatencyAwarePolicy(beta=float("nan"))
        with pytest.raises(ValueError):
            LatencyAwarePolicy(alpha=float("inf"))

    def test_rtt_policies_require_the_rtt_view(self):
        occupancy = np.array([0, 0])
        capacities = np.array([4, 4])
        rng = np.random.default_rng(0)
        for policy in (LowestRttPolicy(), LatencyAwarePolicy()):
            with pytest.raises(ValueError):
                policy.select(occupancy, capacities, -1, rng)


class TestRegionsAndRtt:
    def test_region_profile_validation(self):
        with pytest.raises(ValueError):
            RegionProfile(names=(), weights=())
        with pytest.raises(ValueError):
            RegionProfile(names=("a", "a"), weights=(1.0, 1.0))
        with pytest.raises(ValueError):
            RegionProfile(names=("a", "b"), weights=(1.0,))
        with pytest.raises(ValueError):
            RegionProfile(names=("a", "b"), weights=(0.0, 0.0))
        profile = RegionProfile(names=("a", "b"), weights=(3.0, 1.0))
        assert profile.n_regions == 2
        assert profile.probabilities() == pytest.approx([0.75, 0.25])

    def test_non_finite_parameters_rejected_eagerly(self):
        # NaN passes sign comparisons, so finiteness is checked up front
        with pytest.raises(ValueError):
            RegionProfile(names=("a", "b"), weights=(float("nan"), 1.0))
        with pytest.raises(ValueError):
            RttProfile(name="bad", intra_region_ms=float("nan"))
        with pytest.raises(ValueError):
            RttProfile(name="bad", hop_ms=float("inf"))
        with pytest.raises(ValueError):
            RttProfile(name="bad", jitter_cv=(0.1, float("nan"), 0.1))

    def test_region_profile_coerces_lists(self, small_fleet):
        listy = RegionProfile(names=["a", "b"], weights=[1.0, 1.0])
        assert listy.names == ("a", "b")
        assert listy.weights == (1.0, 1.0)
        assert listy == RegionProfile(names=("a", "b"), weights=(1.0, 1.0))
        # and the simulator accepts its own default matrix for it
        config = PoolConfig.for_fleet(
            small_fleet, epoch_length=EPOCH, region_profile=listy
        )
        result = simulate_matchmaking(small_fleet, "least_loaded", config)
        assert result.rtt.region_names == ("a", "b")

    def test_traits_carry_regions(self, saturating_config):
        traits = PlayerTraits.draw(saturating_config, seed=5)
        profile = saturating_config.region_profile
        assert traits.region_index.shape == (saturating_config.pool_size,)
        assert set(np.unique(traits.region_index)) <= set(
            range(profile.n_regions)
        )
        assert traits.region_of(0) in profile.names

    def test_rtt_matrix_deterministic_and_shaped(self, small_fleet):
        regions = RegionProfile()
        a = RttMatrix.for_fleet(small_fleet, regions, seed=7)
        b = RttMatrix.for_fleet(small_fleet, regions, seed=7)
        assert np.array_equal(a.matrix, b.matrix)
        assert np.array_equal(a.server_regions, b.server_regions)
        assert a.matrix.shape == (regions.n_regions, small_fleet.n_servers)
        assert np.all(a.matrix > 0)
        c = RttMatrix.for_fleet(small_fleet, regions, seed=8)
        assert not np.array_equal(a.matrix, c.matrix)

    def test_home_region_is_nearest_before_jitter(self, small_fleet):
        # with zero jitter the home region's row is the strict argmin
        profile = RttProfile(
            name="flatjitter", intra_region_ms=10.0, hop_ms=30.0,
            jitter_cv=(0.0, 0.0, 0.0),
        )
        matrix = RttMatrix.for_fleet(small_fleet, profile=profile, seed=3)
        for server in range(matrix.n_servers):
            assert (
                int(np.argmin(matrix.matrix[:, server]))
                == int(matrix.server_regions[server])
            )

    def test_uniform_profile_is_flat(self, small_fleet):
        matrix = RttMatrix.for_fleet(small_fleet, profile="uniform", seed=0)
        assert matrix.is_uniform
        global_matrix = RttMatrix.for_fleet(small_fleet, profile="global", seed=0)
        assert not global_matrix.is_uniform

    def test_unknown_rtt_profile_rejected(self):
        with pytest.raises(KeyError):
            make_rtt_profile("marianas-trench")
        assert set(RTT_PROFILES) == {"global", "continental", "uniform"}

    def test_rtt_matrix_validation(self):
        with pytest.raises(ValueError):
            RttMatrix(
                region_names=("a", "b"),
                server_regions=np.array([0]),
                matrix=np.ones((3, 1)),
            )
        with pytest.raises(ValueError):
            RttMatrix(
                region_names=("a",),
                server_regions=np.array([0, 0]),
                matrix=np.ones((1, 1)),
            )
        with pytest.raises(ValueError):
            RttMatrix(
                region_names=("a",),
                server_regions=np.array([0]),
                matrix=np.zeros((1, 1)),
            )

    def test_rtt_matrix_coerces_inputs(self):
        # list/int inputs must behave exactly like validated arrays
        matrix = RttMatrix(
            region_names=["a", "b"],
            server_regions=[0, 1, 1],
            matrix=[[10, 20, 30], [40, 50, 60]],
        )
        assert matrix.n_servers == 3
        assert matrix.matrix.dtype == float
        assert matrix.server_regions.dtype == np.int64
        assert matrix.region_names == ("a", "b")
        assert not matrix.is_uniform

    def test_describe_names_every_server(self, small_fleet):
        text = RttMatrix.for_fleet(small_fleet, seed=0).describe()
        for server in range(small_fleet.n_servers):
            assert f"server {server:2d}" in text
        assert "na-west" in text


class TestEngineInvariants:
    def test_capacity_never_exceeded(self, results):
        for name, result in results.items():
            capacities = np.asarray(result.capacities)[:, None]
            assert np.all(result.occupancy <= capacities), name
            assert np.all(result.occupancy >= 0), name

    def test_admission_accounting(self, results):
        for result in results.values():
            stats = result.admission
            assert stats.attempts == stats.admitted + stats.rejected
            assert stats.rejected == stats.balked + stats.retried
            assert stats.admitted == sum(len(s) for s in result.sessions)
            assert int(result.per_server_attempts.sum()) >= stats.admitted

    def test_only_capacity_aware_retries(self, results):
        assert results["capacity_aware"].admission.retried > 0
        for name in ("random", "least_loaded", "sticky"):
            assert results[name].admission.retried == 0, name

    def test_sessions_within_horizon_and_consistent(self, results):
        for result in results.values():
            for server, session_list in enumerate(result.sessions):
                for record in session_list:
                    assert 0.0 <= record.start < record.end <= HORIZON
                    assert 0 <= record.client_id < result.config.pool_size

    def test_no_player_connected_twice_at_once(self, results):
        for name, result in results.items():
            events = []
            for session_list in result.sessions:
                for record in session_list:
                    events.append((record.start, 1, record.client_id))
                    events.append((record.end, 0, record.client_id))
            events.sort()
            connected = set()
            for _, kind, client in events:
                if kind == 0:
                    connected.discard(client)
                else:
                    assert client not in connected, name
                    connected.add(client)

    def test_saturating_demand_pins_least_loaded(self, results):
        stats = results["least_loaded"].occupancy_stats()
        assert stats.utilization > 0.8

    def test_sticky_affinity_beats_random(self, results):
        assert (
            results["sticky"].affinity_fraction
            > results["random"].affinity_fraction
        )

    def test_least_loaded_rejects_no_more_than_random(self, results):
        assert (
            results["least_loaded"].rejection_rate
            <= results["random"].rejection_rate
        )

    def test_determinism_and_seed_sensitivity(self, small_fleet, saturating_config):
        a = simulate_matchmaking(small_fleet, "sticky", saturating_config)
        b = simulate_matchmaking(small_fleet, "sticky", saturating_config)
        assert np.array_equal(a.occupancy, b.occupancy)
        assert a.sessions == b.sessions
        c = simulate_matchmaking(
            small_fleet, "sticky", saturating_config, seed=99
        )
        assert not np.array_equal(a.occupancy, c.occupancy)

    def test_horizon_mismatch_rejected(self, small_fleet, saturating_config):
        with pytest.raises(ValueError):
            simulate_matchmaking(
                small_fleet,
                "random",
                saturating_config.replace(horizon=HORIZON / 2, epoch_length=30.0),
            )

    def test_every_policy_records_session_rtts(self, results):
        for name, result in results.items():
            assert result.rtt is not None, name
            assert len(result.session_rtts) == result.n_servers
            for server, rtts in enumerate(result.session_rtts):
                assert rtts.shape == (len(result.sessions[server]),), name
                assert np.all(rtts > 0), name
            assert (
                result.all_session_rtts().size == result.admission.admitted
            ), name

    def test_session_rtts_match_matrix_lookup(self, small_fleet, saturating_config):
        result = simulate_matchmaking(small_fleet, "lowest_rtt", saturating_config)
        traits = PlayerTraits.draw(saturating_config, result.seed)
        for server, (session_list, rtts) in enumerate(
            zip(result.sessions, result.session_rtts)
        ):
            for record, rtt_ms in zip(session_list, rtts):
                region = int(traits.region_index[record.client_id])
                assert rtt_ms == result.rtt.matrix[region, server]

    def test_mismatched_rtt_matrix_rejected(self, small_fleet, saturating_config):
        regions = saturating_config.region_profile
        bad_servers = RttMatrix(
            region_names=regions.names,
            server_regions=np.zeros(N_SERVERS + 1, dtype=np.int64),
            matrix=np.ones((regions.n_regions, N_SERVERS + 1)),
        )
        with pytest.raises(ValueError):
            simulate_matchmaking(
                small_fleet, "lowest_rtt", saturating_config, rtt=bad_servers
            )
        bad_regions = RttMatrix(
            region_names=("elsewhere",),
            server_regions=np.zeros(N_SERVERS, dtype=np.int64),
            matrix=np.ones((1, N_SERVERS)),
        )
        with pytest.raises(ValueError):
            simulate_matchmaking(
                small_fleet, "lowest_rtt", saturating_config, rtt=bad_regions
            )

    def test_describe_reports_rtt(self, results):
        for result in results.values():
            assert " ms" in result.describe()

    def test_legacy_four_argument_policy_still_runs(
        self, small_fleet, saturating_config
    ):
        # policies written against the pre-RTT select() signature must
        # keep working: the engine only passes rtt to those that accept it
        class LegacyFirstOpen(SelectionPolicy):
            name = "legacy_first_open"

            def select(self, occupancy, capacities, last_server, rng):
                open_servers = np.flatnonzero(occupancy < capacities)
                if open_servers.size == 0:
                    return None
                return int(open_servers[0])

        result = simulate_matchmaking(
            small_fleet, LegacyFirstOpen(), saturating_config
        )
        assert result.admission.admitted > 0
        # RTTs are still recorded for the QoE analytics
        assert result.all_session_rtts().size == result.admission.admitted

    def test_session_rtt_warmup_cut(self, results):
        result = results["least_loaded"]
        cutoff = 300.0
        cut = result.all_session_rtts(after=cutoff)
        expected = sum(
            sum(1 for record in session_list if record.start >= cutoff)
            for session_list in result.sessions
        )
        assert cut.size == expected
        assert 0 < cut.size < result.all_session_rtts().size
        assert result.latency_stats(after=cutoff).count == expected
        # past the horizon nothing remains, and the stats degrade cleanly
        assert result.latency_stats(after=HORIZON).count == 0

    def test_latency_aware_reads_current_row_contents(self):
        # select is a pure function of its arguments: mutating the row
        # in place between calls must be reflected immediately (no
        # stale normalisation state inside the policy)
        capacities = np.array([8, 8])
        occupancy = np.array([0, 0])
        rng = np.random.default_rng(0)
        policy = LatencyAwarePolicy(alpha=0.0, beta=1.0)
        row = np.array([10.0, 100.0])
        assert policy.select(occupancy, capacities, -1, rng, rtt=row) == 0
        row[:] = [100.0, 10.0]
        assert policy.select(occupancy, capacities, -1, rng, rtt=row) == 1


class TestAssignedTraffic:
    def test_assigned_population_roundtrip(self, results, small_fleet):
        result = results["least_loaded"]
        profile = small_fleet.server_profile(0)
        population = assigned_population(profile, result.sessions[0])
        assert population.established_count == len(result.sessions[0])
        assert population.attempted_count == len(result.sessions[0])
        assert population.unique_attempting == population.unique_establishing
        starts = [s.start for s in population.sessions]
        assert starts == sorted(starts)

    def test_empty_assignment_means_silent_server(self, small_fleet):
        profile = small_fleet.server_profile(0)
        series = simulate_assigned_series(
            AssignedSeriesTask(profile=profile, sessions=(), seed=7)
        )
        assert len(series) == int(HORIZON)
        # no sessions -> no structural rate; only sub-packet clipped
        # noise remains (a populated server emits ~1e5+ packets here)
        assert series.total_counts.sum() < 1.0

    def test_fleet_scenario_from_matchmaking_sums_servers(self, results):
        result = results["least_loaded"]
        scenario = FleetScenario.from_matchmaking(result)
        aggregate = scenario.aggregate_per_second(workers=1)
        total = sum(
            series.total_counts.sum()
            for series in scenario.iter_server_series()
        )
        assert aggregate.total_counts.sum() == pytest.approx(total)

    def test_assignment_length_validated(self, results, small_fleet):
        with pytest.raises(ValueError):
            FleetScenario(small_fleet, assignments=((),))


class TestFacilityMetrics:
    def test_admission_stats_validation(self):
        with pytest.raises(ValueError):
            AdmissionStats(attempts=5, admitted=3, rejected=1)
        with pytest.raises(ValueError):
            AdmissionStats(attempts=5, admitted=3, rejected=2, balked=2, retried=1)
        stats = AdmissionStats(
            attempts=5, admitted=3, rejected=2, balked=1, retried=1
        )
        assert stats.rejection_rate == pytest.approx(0.4)
        assert stats.retry_rate == pytest.approx(0.5)
        assert AdmissionStats(0, 0, 0).rejection_rate == 0.0

    def test_occupancy_stats_from_matrix(self):
        occupancy = np.array([[2, 2, 1], [0, 1, 1]])
        capacities = np.array([2, 2])
        stats = OccupancyStats.from_occupancy(occupancy, capacities)
        assert stats.mean_occupancy == pytest.approx(7 / 6)
        assert stats.utilization == pytest.approx(7 / 12)
        assert stats.full_fraction == pytest.approx(2 / 6)
        assert stats.facility_full_fraction == 0.0
        assert stats.distribution.sum() == pytest.approx(1.0)
        assert stats.distribution[2] == pytest.approx(2 / 6)
        assert stats.quantile(0.0) == 0
        assert stats.quantile(1.0) == 2

    def test_occupancy_stats_shape_validated(self):
        with pytest.raises(ValueError):
            OccupancyStats.from_occupancy(np.zeros((2, 3)), np.array([4]))

    def test_latency_stats_from_rtts(self):
        stats = LatencyStats.from_rtts(
            np.array([10.0, 20.0, 30.0, 40.0]), percentile=50.0
        )
        assert stats.count == 4
        assert stats.mean_ms == pytest.approx(25.0)
        assert stats.median_ms == pytest.approx(25.0)
        assert stats.p_ms == pytest.approx(25.0)
        assert stats.max_ms == pytest.approx(40.0)

    def test_latency_stats_empty_and_invalid(self):
        empty = LatencyStats.from_rtts(np.empty(0))
        assert empty.count == 0
        assert empty.mean_ms == 0.0
        with pytest.raises(ValueError):
            LatencyStats.from_rtts(np.array([1.0]), percentile=0.0)
        with pytest.raises(ValueError):
            LatencyStats.from_rtts(np.array([-1.0]))
        with pytest.raises(ValueError):
            LatencyStats.from_rtts(np.ones((2, 2)))

    def test_occupancy_rtt_frontier(self):
        points = {
            "fill": (0.96, 52.0),       # highest occupancy
            "qoe": (0.94, 30.0),        # lower RTT, slightly emptier
            "dominated": (0.93, 55.0),  # worse on both axes
        }
        assert occupancy_rtt_frontier(points) == ("fill", "qoe")

    def test_occupancy_rtt_frontier_orders_by_utilization(self):
        points = {"a": (0.5, 10.0), "b": (0.9, 20.0), "c": (0.7, 15.0)}
        assert occupancy_rtt_frontier(points) == ("b", "c", "a")
        # a tie on both axes keeps both (neither strictly dominates)
        tied = {"x": (0.8, 12.0), "y": (0.8, 12.0)}
        assert occupancy_rtt_frontier(tied) == ("x", "y")

    def test_policy_multiplexing_gain(self):
        def envelope(peak, mean):
            return FacilityEnvelope(
                duration=60.0,
                percentile=99.0,
                mean_pps=mean,
                peak_pps=peak,
                mean_bandwidth_bps=1.0,
                peak_bandwidth_bps=1.0,
            )

        smooth = envelope(110.0, 100.0)
        bursty = envelope(200.0, 100.0)
        assert policy_multiplexing_gain(bursty, smooth) == pytest.approx(
            2.0 / 1.1
        )
        assert policy_multiplexing_gain(smooth, smooth) == pytest.approx(1.0)
