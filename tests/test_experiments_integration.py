"""Integration tests: full experiment pipelines on scaled-down scenarios.

The bench suite runs every experiment at full scale; these tests verify
the pipelines end-to-end at reduced cost and check the qualitative
claims that must hold at any scale.
"""

import numpy as np
import pytest

from repro.core.natanalysis import NatAnalysis
from repro.core.packetsize import PacketSizeAnalysis
from repro.core.summary import GeneralTraceInfo, NetworkUsage
from repro.experiments.base import ExperimentOutput
from repro.experiments.runner import REGISTRY, run_experiments
from repro.gameserver.config import olygamer_week
from repro.gameserver.fluid import CountLevelGenerator
from repro.gameserver.generator import PacketLevelGenerator
from repro.router.nat import NatDevice


@pytest.fixture(scope="module")
def two_hour_trace(full_profile, full_population):
    generator = PacketLevelGenerator(
        full_profile, population=full_population, seed=5
    )
    return generator.generate(100.0, 1900.0)


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "table1", "table2", "table3", "table4",
            *(f"fig{i}" for i in range(1, 16)),
            "caching", "linearity", "buffering", "aggregation", "closedloop",
            "sourcemodel", "fleet", "facilitynet", "matchmaking", "churn",
        }
        assert set(REGISTRY) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiments(["nonexistent"])

    def test_experiment_output_row_lookup(self):
        output = ExperimentOutput("x", "t")
        with pytest.raises(KeyError):
            output.row("missing")


class TestScaledPipelines:
    def test_structural_asymmetry(self, two_hour_trace):
        usage = NetworkUsage.from_trace(two_hour_trace, duration=1800.0)
        assert usage.mean_packet_load_in > usage.mean_packet_load_out
        assert usage.mean_bandwidth_out_kbps > usage.mean_bandwidth_in_kbps
        assert usage.mean_packet_size_out > 3.0 * usage.mean_packet_size_in

    def test_packet_sizes_tiny(self, two_hour_trace):
        analysis = PacketSizeAnalysis.from_trace(two_hour_trace)
        assert analysis.fraction_under(200.0) > 0.9
        assert analysis.mean_in == pytest.approx(39.7, rel=0.1)

    def test_session_statistics(self, full_population):
        info = GeneralTraceInfo.from_population(full_population)
        assert info.established_connections > 0
        assert info.attempted_connections >= info.established_connections
        assert info.unique_clients_attempting >= info.unique_clients_establishing

    def test_per_player_clamp(self, full_profile, full_population):
        fluid = CountLevelGenerator(
            full_profile, population=full_population, seed=5
        ).per_second()
        players = full_population.players_at(
            np.arange(len(fluid)) + 0.5
        )
        busy = players >= full_profile.max_players - 2
        if busy.sum() < 100:
            pytest.skip("server not near capacity in this window")
        kbps = fluid.bandwidth_bps(54)[busy].mean() / 1000.0
        per_player = kbps / players[busy].mean()
        assert per_player == pytest.approx(40.0, rel=0.25)

    def test_nat_asymmetry_on_scaled_run(self, two_hour_trace):
        window = two_hour_trace.time_slice(100.0, 1000.0)
        result = NatDevice(seed=9).run(window)
        analysis = NatAnalysis.from_result(result)
        assert analysis.incoming_loss_rate > analysis.outgoing_loss_rate
        assert 0.002 < analysis.incoming_loss_rate < 0.05

    def test_map_dip_present(self, full_profile, full_population):
        fluid = CountLevelGenerator(
            full_profile, population=full_population, seed=5
        ).per_second()
        map_change = int(full_profile.map_duration)
        dip = fluid.total_counts[map_change : map_change + 4].min()
        baseline = fluid.total_counts[map_change - 120 : map_change - 20].mean()
        assert dip < 0.3 * baseline


class TestRunnerCli:
    def test_list_flag(self, capsys):
        from repro.experiments.runner import main

        assert main(["--list"]) == 0
        printed = capsys.readouterr().out
        assert "table1" in printed
        assert "fig15" in printed

    def test_single_experiment_run(self, capsys):
        from repro.experiments.runner import main

        code = main(["table1", "--seed", "0"])
        printed = capsys.readouterr().out
        assert "Table I" in printed
        assert "experiments reproduced" in printed
        assert code in (0, 1)
