"""Telemetry is provably non-invasive: tracing never changes results.

The observability layer (spans, metrics, streaming artifacts) reads
clocks and *finished* results, never random streams — so every seeded
simulation must be bit-identical with tracing enabled, disabled, or
toggled mid-process.  These tests pin that contract on the golden
matchmaking scenario and on the sharded fleet aggregate.
"""

import numpy as np
import pytest

from repro import obs
from repro.fleet.profiles import hosting_facility
from repro.matchmaking import PoolConfig, simulate_matchmaking

SEED = 3
N_SERVERS = 3
HORIZON = 900.0


@pytest.fixture(autouse=True)
def _clean_obs_state(tmp_path):
    """No leaked session/tracer across tests, whatever happens inside."""
    yield
    if obs.current_session() is not None:
        obs.end_trace_session()
    obs.trace.install_tracer(None)


def _golden_run(policy: str = "latency_aware"):
    fleet = hosting_facility(
        n_servers=N_SERVERS, duration=HORIZON, seed=SEED
    )
    config = PoolConfig.for_fleet(
        fleet,
        demand_ratio=3.0,
        epoch_length=60.0,
        session_duration_mean=180.0,
        session_duration_min=5.0,
    )
    return simulate_matchmaking(fleet, policy, config)


def _assert_identical(a, b):
    """Bit-identity across every array and record of two results."""
    np.testing.assert_array_equal(a.occupancy, b.occupancy)
    np.testing.assert_array_equal(
        a.per_server_attempts, b.per_server_attempts
    )
    np.testing.assert_array_equal(
        a.per_server_rejections, b.per_server_rejections
    )
    assert a.admission == b.admission
    assert a.sessions == b.sessions
    assert a.capacities == b.capacities
    assert a.repeat_assignments == b.repeat_assignments
    assert len(a.session_rtts) == len(b.session_rtts)
    for rtts_a, rtts_b in zip(a.session_rtts, b.session_rtts):
        np.testing.assert_array_equal(rtts_a, rtts_b)
    assert a.describe() == b.describe()


class TestMatchmakingBitIdentity:
    def test_traced_equals_untraced(self, tmp_path):
        baseline = _golden_run()

        obs.start_trace_session(tmp_path / "trace", seed=SEED)
        try:
            traced = _golden_run()
        finally:
            obs.end_trace_session()

        _assert_identical(baseline, traced)

    def test_mid_process_toggle(self, tmp_path):
        """on -> off -> on again: every run identical to the cold one."""
        baseline = _golden_run()

        obs.start_trace_session(tmp_path / "t1", seed=SEED)
        first = _golden_run()
        obs.end_trace_session()

        second = _golden_run()  # tracing now off again

        obs.start_trace_session(tmp_path / "t2", seed=SEED)
        third = _golden_run()
        obs.end_trace_session()

        for result in (first, second, third):
            _assert_identical(baseline, result)

    def test_tracing_actually_recorded_something(self, tmp_path):
        # guard against the trivial pass where tracing silently no-ops
        from repro.obs.export import load_manifest, read_jsonl

        obs.start_trace_session(tmp_path / "trace", seed=SEED)
        _golden_run()
        obs.end_trace_session()

        manifest = load_manifest(tmp_path / "trace")
        assert manifest["metrics"]["matchmaking.attempts"] > 0
        # the golden run goes through engine="auto" -> columnar, so the
        # vectorisation counters must land in the manifest totals too
        assert manifest["metrics"]["matchmaking.columnar.segments"] > 0
        assert (
            "matchmaking.columnar.scalar_fallback_attempts"
            in manifest["metrics"]
        )
        epochs = read_jsonl(tmp_path / "trace" / "matchmaking_epochs.jsonl")
        assert len(epochs) == int(HORIZON // 60.0)


class TestLiveMonitoringBitIdentity:
    """The PR-9 write side (heartbeats + sampler) is also non-invasive."""

    def test_sampled_run_equals_untraced(self, tmp_path):
        """The resource sampler thread runs alongside the simulation and
        must not perturb it: observers only, no RNG reads."""
        baseline = _golden_run()

        obs.start_trace_session(
            tmp_path / "trace", sample_interval=0.005, seed=SEED
        )
        try:
            sampled = _golden_run()
        finally:
            obs.end_trace_session()

        _assert_identical(baseline, sampled)
        rows = obs.read_jsonl(tmp_path / "trace" / "resources.jsonl")
        assert rows, "sampler never fired"  # guard the trivial pass

    def test_progress_hook_is_null_without_session(self):
        """obs.progress() between sessions publishes nowhere and the
        simulation around it stays bit-identical."""
        baseline = _golden_run()
        assert obs.progress("orphan", 1, 2) is False
        again = _golden_run()
        _assert_identical(baseline, again)

    def test_progress_stream_recorded_under_session(self, tmp_path):
        obs.start_trace_session(tmp_path / "trace", seed=SEED)
        _golden_run()
        obs.end_trace_session()

        rows = obs.read_jsonl(tmp_path / "trace" / "progress.jsonl")
        stages = {row["stage"] for row in rows}
        # golden run goes engine="auto" -> columnar epoch loop
        assert "matchmaking.columnar.epochs" in stages
        final = [
            row
            for row in rows
            if row["stage"] == "matchmaking.columnar.epochs"
        ][-1]
        assert final["done"] == final["total"] == int(HORIZON // 60.0)


class TestFleetBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sharded_aggregate_traced_equals_untraced(
        self, tmp_path, workers
    ):
        """Bit-identity holds for the serial branch and real pools alike
        (workers > 1 ships per-task telemetry back on the futures)."""
        from repro.fleet.scenario import FleetScenario
        from repro.gameserver.fluid import fluid_series_equal

        fleet = hosting_facility(n_servers=4, duration=1800.0, seed=5)
        baseline = FleetScenario(fleet).aggregate_per_second(workers=workers)

        obs.start_trace_session(tmp_path / "trace", seed=5)
        try:
            traced = FleetScenario(fleet).aggregate_per_second(
                workers=workers
            )
        finally:
            obs.end_trace_session()

        assert fluid_series_equal(baseline, traced)

    def test_kernel_fates_identical_under_tracing(self, tmp_path):
        from repro.kernels import fifo_forward

        rng = np.random.default_rng(11)
        arrivals = np.cumsum(rng.exponential(1.0, size=5000))
        services = rng.uniform(0.5, 1.5, size=5000)
        baseline = fifo_forward(arrivals, services, primary_queue=8)

        obs.start_trace_session(tmp_path / "trace")
        try:
            traced = fifo_forward(arrivals, services, primary_queue=8)
        finally:
            obs.end_trace_session()

        np.testing.assert_array_equal(baseline.fates, traced.fates)
        np.testing.assert_array_equal(
            baseline.departures, traced.departures
        )


class TestFacilitynetStreaming:
    """Per-hop publication: streamed rows and bit-identical traversal."""

    def _run_hops(self, tmp_dir=None):
        from repro.facilitynet.pipeline import rack_ingress_traces, run_hops
        from repro.facilitynet.topology import build_topology

        fleet = hosting_facility(n_servers=4, duration=300.0, seed=0)
        shape = build_topology(4, 2, per_server_pps=1.0, per_server_bps=1.0)
        ingress = rack_ingress_traces(fleet, shape, 120.0, 180.0, workers=1)
        return run_hops(shape, ingress, 120.0, 180.0, seed=fleet.seed)

    def test_hop_stream_rows_match_reports(self, tmp_path):
        from repro.obs.export import load_manifest, read_jsonl

        obs.start_trace_session(tmp_path / "trace")
        result = self._run_hops()
        obs.end_trace_session()

        rows = read_jsonl(tmp_path / "trace" / "facilitynet_hops.jsonl")
        assert [row["hop"] for row in rows] == [
            report.name for report in result.hops
        ]
        for row, report in zip(rows, result.hops):
            assert row["tier"] == report.tier
            assert row["offered"] == report.offered
            assert row["dropped"] == report.dropped
        manifest = load_manifest(tmp_path / "trace")
        assert manifest["metrics"]["facilitynet.offered"] == sum(
            report.offered for report in result.hops
        )

    def test_traversal_identical_with_tracing(self, tmp_path):
        baseline = self._run_hops()

        obs.start_trace_session(tmp_path / "trace")
        try:
            traced = self._run_hops()
        finally:
            obs.end_trace_session()

        assert len(baseline.hops) == len(traced.hops)
        for a, b in zip(baseline.hops, traced.hops):
            assert a.name == b.name
            assert a.offered == b.offered
            assert a.forwarded == b.forwarded
            assert a.dropped == b.dropped
            assert a.mean_delay_s == b.mean_delay_s
