"""Unit tests for provisioning models, NAT analysis and report rendering."""

import numpy as np
import pytest

from repro.core.natanalysis import NatAnalysis
from repro.core.provisioning import (
    CapacityPlan,
    PerPlayerModel,
    linearity_experiment,
)
from repro.core.report import (
    ComparisonRow,
    all_rows_ok,
    format_value,
    render_series_preview,
    render_table,
)
from repro.gameserver.config import olygamer_week, quick_test_profile
from repro.router.nat import NatDevice


class TestPerPlayerModel:
    def test_from_profile_near_40kbps(self):
        model = PerPlayerModel.from_profile(olygamer_week())
        assert model.bandwidth_bps == pytest.approx(40_000.0, rel=0.15)
        assert 30.0 <= model.pps <= 50.0

    def test_linear_scaling(self):
        model = PerPlayerModel(bandwidth_bps=40_000.0, pps=38.0)
        assert model.server_bandwidth_bps(22) == pytest.approx(880_000.0)
        assert model.server_pps(22) == pytest.approx(836.0)

    def test_saturates_modem(self):
        model = PerPlayerModel.from_profile(olygamer_week())
        assert model.saturates_modem()

    def test_negative_players_rejected(self):
        model = PerPlayerModel(40_000.0, 38.0)
        with pytest.raises(ValueError):
            model.server_bandwidth_bps(-1)
        with pytest.raises(ValueError):
            model.server_pps(-1)


class TestCapacityPlan:
    def test_smc_class_device_cannot_host_full_server(self):
        per_player = PerPlayerModel.from_profile(olygamer_week())
        plan = CapacityPlan(device_pps_capacity=1250.0, per_player=per_player)
        assert not plan.supports_server(22)

    def test_carrier_class_device_can(self):
        per_player = PerPlayerModel.from_profile(olygamer_week())
        plan = CapacityPlan(device_pps_capacity=100_000.0, per_player=per_player)
        assert plan.supports_server(22)
        assert plan.max_servers(22) >= 10

    def test_validation(self):
        plan = CapacityPlan(1250.0, PerPlayerModel(40_000.0, 0.0))
        with pytest.raises(ValueError):
            plan.max_players()
        plan2 = CapacityPlan(1250.0, PerPlayerModel(40_000.0, 38.0))
        with pytest.raises(ValueError):
            plan2.max_servers(0)


class TestLinearityExperiment:
    def test_small_sweep_is_linear(self):
        result = linearity_experiment(
            quick_test_profile(),
            player_counts=(2, 4, 6, 8),
            duration=300.0,
            seed=1,
        )
        assert result.is_linear(min_r_squared=0.9)
        assert result.kbps_per_player > 10.0
        assert result.pps_per_player > 10.0

    def test_invalid_player_count(self):
        with pytest.raises(ValueError):
            linearity_experiment(
                quick_test_profile(), player_counts=(0,), duration=100.0
            )


class TestNatAnalysis:
    def test_from_result(self, quick_trace):
        result = NatDevice(seed=3).run(quick_trace)
        analysis = NatAnalysis.from_result(result)
        assert analysis.clients_to_nat == result.clients_to_nat
        assert analysis.nat_to_server == result.nat_to_server
        assert analysis.mean_forwarding_delay >= 0.0
        assert len(analysis.series.clients_to_nat) > 0

    def test_loss_asymmetry_handles_zero(self, quick_trace):
        result = NatDevice(seed=3).run(quick_trace)
        analysis = NatAnalysis.from_result(result)
        asymmetry = analysis.loss_asymmetry()
        assert asymmetry >= 0.0 or asymmetry == float("inf")

    def test_dropout_validation(self, quick_trace):
        result = NatDevice(seed=3).run(quick_trace)
        analysis = NatAnalysis.from_result(result)
        with pytest.raises(ValueError):
            analysis.series.dropout_seconds(threshold_fraction=1.5)


class TestReportRendering:
    def test_comparison_row_tolerance(self):
        assert ComparisonRow("x", 100.0, 120.0).ok
        assert not ComparisonRow("x", 100.0, 300.0).ok
        assert ComparisonRow("x", 100.0, 260.0, tolerance_factor=3.0).ok

    def test_all_rows_ok(self):
        rows = [ComparisonRow("a", 1.0, 1.0), ComparisonRow("b", 2.0, 2.1)]
        assert all_rows_ok(rows)
        rows.append(ComparisonRow("c", 1.0, 10.0))
        assert not all_rows_ok(rows)

    def test_render_table_contains_rows(self):
        text = render_table(
            "Demo", [ComparisonRow("metric", 100.0, 110.0, unit="pps")],
            notes=["scaled run"],
        )
        assert "Demo" in text
        assert "metric [pps]" in text
        assert "note: scaled run" in text
        assert "yes" in text

    def test_render_table_marks_failures(self):
        text = render_table("Demo", [ComparisonRow("bad", 1.0, 99.0)])
        assert "NO" in text

    def test_format_value_ranges(self):
        assert format_value(0) == "0"
        assert format_value(2_500_000) == "2,500,000"
        assert format_value(123.456) == "123.5"
        assert format_value(1.234) == "1.23"
        assert format_value(0.01234) == "0.0123"

    def test_series_preview(self):
        text = render_series_preview(
            "Series", [0.0, 1.0], [10.0, 20.0], max_points=1, unit="pps"
        )
        assert "Series" in text
        assert "(2 points total)" in text
