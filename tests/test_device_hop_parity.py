"""Regression: the refactored device reproduces pre-refactor results.

``router/device.py``'s FIFO core was generalised into
:func:`repro.facilitynet.hops.fifo_forward`; the device now delegates to
that kernel.  These tests pin the engine's outputs on seeded busy
windows to the exact values the pre-refactor loop produced (captured
before the refactor), so any behavioural drift in the shared kernel —
drop decisions, freeze bookkeeping, departure arithmetic — fails loudly
instead of silently recalibrating Table IV.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.facilitynet.hops import FreezePolicy, fifo_forward
from repro.net.addresses import IPv4Address
from repro.router.device import DeviceProfile, ForwardingEngine
from repro.trace.packet import Direction
from repro.trace.trace import TraceBuilder

SERVER = IPv4Address("10.0.0.2")
CLIENT = IPv4Address("24.0.0.1")


def busy_window(in_rate, out_burst, duration=60.0, seed=1202):
    """A seeded busy-hour-style window: Poisson inbound, tick bursts out."""
    rng = np.random.default_rng(seed)
    builder = TraceBuilder(server_address=SERVER)
    t = 0.0
    while t < duration:
        t += float(rng.exponential(1.0 / in_rate))
        if t >= duration:
            break
        builder.add(t, Direction.IN, CLIENT.value, SERVER.value, 1000, 27015, 40)
    for tick in np.arange(0.05, duration, 0.05):
        for j in range(out_burst):
            builder.add(tick + j * 1e-4, Direction.OUT, SERVER.value,
                        CLIENT.value, 27015, 1000, 130)
    return builder.build()


#: (in_rate, out_burst) -> exact pre-refactor outputs of
#: ForwardingEngine(DeviceProfile(), seed=7) on busy_window(..., seed=1202).
PRE_REFACTOR = {
    (900.0, 14): dict(
        packets=70654,
        inbound_offered=53868,
        inbound_dropped=1527,
        outbound_offered=4312,
        outbound_dropped=0,
        suppressed=12474,
        n_freezes=82,
        n_stalls=1,
        departures_sum=1707825.4504208677,
        delay_sum=163.4605467571,
    ),
    (700.0, 26): dict(
        packets=73103,
        inbound_offered=41929,
        inbound_dropped=1422,
        outbound_offered=8216,
        outbound_dropped=1555,
        suppressed=22958,
        n_freezes=81,
        n_stalls=1,
        departures_sum=1421084.1460337790,
        delay_sum=157.5553519752,
    ),
}


class TestPreRefactorParity:
    @pytest.mark.parametrize("stream", sorted(PRE_REFACTOR))
    def test_loss_counts_bit_identical(self, stream):
        trace = busy_window(*stream)
        expected = PRE_REFACTOR[stream]
        result = ForwardingEngine(DeviceProfile(), seed=7).process(trace)
        assert len(trace) == expected["packets"]
        assert result.inbound_offered == expected["inbound_offered"]
        assert (
            result.inbound_offered - result.inbound_forwarded
            == expected["inbound_dropped"]
        )
        assert result.outbound_offered == expected["outbound_offered"]
        assert (
            result.outbound_offered - result.outbound_forwarded
            == expected["outbound_dropped"]
        )
        assert result.suppressed_count == expected["suppressed"]
        assert len(result.freeze_windows) == expected["n_freezes"]
        assert len(result.stall_windows) == expected["n_stalls"]

    @pytest.mark.parametrize("stream", sorted(PRE_REFACTOR))
    def test_departure_arithmetic_bit_identical(self, stream):
        trace = busy_window(*stream)
        expected = PRE_REFACTOR[stream]
        result = ForwardingEngine(DeviceProfile(), seed=7).process(trace)
        # sums over tens of thousands of float64 departures: any changed
        # drop decision or service-order change shifts these immediately
        assert float(np.nansum(result.departures)) == pytest.approx(
            expected["departures_sum"], rel=1e-12
        )
        assert float(result.delays().sum()) == pytest.approx(
            expected["delay_sum"], rel=1e-12
        )


class TestKernelMatchesDevice:
    def test_manual_kernel_call_reproduces_engine(self):
        """Driving the kernel with the device's own inputs is identical."""
        trace = busy_window(900.0, 14)
        profile = DeviceProfile()
        engine = ForwardingEngine(profile, seed=7)
        reference = engine.process(trace)

        # re-derive the exact same service times and stalls the engine drew
        replay = ForwardingEngine(profile, seed=7)
        rng = replay.streams.get("service")
        sigma = np.sqrt(np.log(1.0 + profile.service_cv**2))
        mu = np.log(1.0 / profile.lookup_rate) - 0.5 * sigma**2
        service_times = rng.lognormal(mu, sigma, size=len(trace))
        stalls = replay._draw_stalls(
            float(trace.timestamps[-1]), float(trace.timestamps[0])
        )

        kernel = fifo_forward(
            trace.timestamps,
            service_times,
            primary_mask=trace.direction_mask(Direction.IN),
            primary_queue=profile.wan_queue,
            secondary_queue=profile.lan_queue,
            blackouts=stalls,
            freeze=FreezePolicy(
                threshold=profile.freeze_threshold,
                window=profile.freeze_window,
                duration=profile.freeze_duration,
                lag=profile.freeze_lag,
            ),
        )
        assert np.array_equal(kernel.fates, reference.fates)
        assert np.array_equal(
            kernel.departures, reference.departures, equal_nan=True
        )
        assert kernel.freeze_windows == reference.freeze_windows


class TestImportOrder:
    @pytest.mark.parametrize(
        "module",
        ["repro.router", "repro.router.device", "repro.router.nat",
         "repro.facilitynet", "repro.core"],
    )
    def test_cold_import_has_no_cycle(self, module):
        """The device->hops dependency must not close an import cycle.

        device.py imports the shared kernel from repro.facilitynet.hops;
        facilitynet's package __init__ resolves lazily precisely so that
        a *cold* interpreter can import the router (or core, which pulls
        the router via natanalysis) first.  In-process imports can't
        test this — everything is already in sys.modules — so spawn a
        fresh interpreter.
        """
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-c", f"import {module}"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
