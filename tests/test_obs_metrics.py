"""Tests for the process-local metrics registry (repro.obs.metrics)."""

import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
    reset_metrics,
)


class TestCounter:
    def test_increments_accumulate(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = Counter("c")
        with pytest.raises(ValueError, match="negative increment"):
            counter.inc(-1)
        assert counter.value == 0

    def test_reset_zeroes(self):
        counter = Counter("c")
        counter.inc(7)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5
        gauge.reset()
        assert gauge.value == 0.0


class TestHistogram:
    def test_streaming_summary(self):
        hist = Histogram("h")
        hist.observe_many([2.0, 4.0, 9.0])
        assert hist.count == 3
        assert hist.total == 15.0
        assert hist.mean == 5.0
        assert hist.min == 2.0
        assert hist.max == 9.0
        assert hist.summary() == {
            "count": 3,
            "total": 15.0,
            "mean": 5.0,
            "min": 2.0,
            "max": 9.0,
        }

    def test_empty_summary_is_json_safe(self):
        # no inf/-inf leaks into the JSON manifest for untouched hists
        assert Histogram("h").summary() == {"count": 0, "total": 0.0}

    def test_reset_restores_sentinels(self):
        hist = Histogram("h")
        hist.observe(1.0)
        hist.reset()
        assert hist.count == 0
        assert hist.min == math.inf
        assert hist.max == -math.inf


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1
        assert "a" in reg

    def test_name_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("a")
        with pytest.raises(TypeError):
            reg.histogram("a")

    def test_reset_is_in_place(self):
        # modules cache metric objects at import time; reset must zero
        # the same objects, never replace them
        reg = MetricsRegistry()
        counter = reg.counter("a")
        hist = reg.histogram("b")
        counter.inc(3)
        hist.observe(1.0)
        reg.reset()
        assert reg.counter("a") is counter
        assert reg.histogram("b") is hist
        assert counter.value == 0
        assert hist.count == 0

    def test_snapshot_sorted_and_json_safe(self):
        import json

        reg = MetricsRegistry()
        reg.counter("z.count").inc(2)
        reg.gauge("a.level").set(0.5)
        reg.histogram("m.delay").observe_many([1.0, 3.0])
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["z.count"] == 2
        assert snap["a.level"] == 0.5
        assert snap["m.delay"]["mean"] == 2.0
        json.dumps(snap)  # must not raise


class TestProcessRegistry:
    def test_registry_is_a_stable_singleton(self):
        assert registry() is registry()

    def test_reset_metrics_keeps_the_registry_object(self):
        reg = registry()
        reg.counter("test.only.probe").inc(5)
        reset_metrics()
        assert registry() is reg
        assert reg.counter("test.only.probe").value == 0


class TestLayerPublication:
    """The instrumented layers actually publish into the registry."""

    def test_fifo_kernel_counts_packets_and_segments(self):
        import numpy as np

        from repro.kernels import fifo_forward

        reset_metrics()
        reg = registry()
        arrivals = np.arange(100, dtype=np.float64)
        fifo_forward(arrivals, np.full(100, 0.5), primary_queue=4)
        assert reg.counter("kernels.fifo.packets").value == 100
        assert reg.counter("kernels.fifo.fast_path_calls").value == 1
        segments = (
            reg.counter("kernels.fifo.fast_segments").value
            + reg.counter("kernels.fifo.scalar_fallback_segments").value
        )
        assert segments >= 1

    def test_fifo_scalar_path_counted(self):
        import numpy as np

        from repro.kernels import fifo_forward

        reset_metrics()
        fifo_forward(
            np.arange(10, dtype=np.float64),
            np.full(10, 0.5),
            primary_mask=np.ones(10, dtype=bool),
        )
        assert registry().counter("kernels.fifo.scalar_calls").value == 1

    def test_shard_map_counts_tasks(self):
        from repro.fleet.execution import shard_map

        reset_metrics()
        shard_map(abs, [-1, -2, -3], workers=1)
        assert registry().counter("fleet.tasks").value == 3

    def test_matchmaking_publishes_admission_totals(self):
        from repro.fleet.profiles import hosting_facility
        from repro.matchmaking import PoolConfig, simulate_matchmaking

        reset_metrics()
        fleet = hosting_facility(n_servers=2, duration=300.0, seed=1)
        config = PoolConfig.for_fleet(fleet, epoch_length=60.0)
        result = simulate_matchmaking(fleet, "least_loaded", config)
        reg = registry()
        assert (
            reg.counter("matchmaking.attempts").value
            == result.admission.attempts
        )
        assert (
            reg.counter("matchmaking.admitted").value
            == result.admission.admitted
        )
        occupancy = reg.histogram("matchmaking.epoch_occupancy")
        assert occupancy.count == result.occupancy.shape[1]

    def test_columnar_engine_counts_segments_and_fallbacks(self):
        from repro.fleet.profiles import hosting_facility
        from repro.matchmaking import PoolConfig, simulate_matchmaking

        reset_metrics()
        fleet = hosting_facility(n_servers=2, duration=300.0, seed=1)
        config = PoolConfig.for_fleet(fleet, epoch_length=60.0)
        result = simulate_matchmaking(
            fleet, "least_loaded", config, engine="columnar"
        )
        reg = registry()
        segments = reg.counter("matchmaking.columnar.segments").value
        vectorised = reg.counter(
            "matchmaking.columnar.vectorised_attempts"
        ).value
        fallback = reg.counter(
            "matchmaking.columnar.scalar_fallback_attempts"
        ).value
        assert segments >= 1
        # every attempt is accounted to exactly one of the two paths
        assert vectorised + fallback == result.admission.attempts
        # the scalar engine must not touch the columnar counters
        reset_metrics()
        simulate_matchmaking(fleet, "least_loaded", config, engine="scalar")
        assert reg.counter("matchmaking.columnar.segments").value == 0
