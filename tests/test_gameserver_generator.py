"""Unit tests for the packet-level traffic generator."""

import numpy as np
import pytest

from repro.gameserver.config import quick_test_profile
from repro.gameserver.generator import (
    PacketLevelGenerator,
    TICK_SERIALIZATION_WINDOW,
    generate_trace,
)
from repro.gameserver.population import simulate_population
from repro.trace.packet import Direction


class TestGenerateBasics:
    def test_trace_sorted_and_bounded(self, quick_trace):
        assert np.all(np.diff(quick_trace.timestamps) >= 0)
        assert quick_trace.timestamps[0] >= 0.0
        assert quick_trace.timestamps[-1] < 120.0

    def test_both_directions_present(self, quick_trace):
        assert len(quick_trace.inbound()) > 0
        assert len(quick_trace.outbound()) > 0

    def test_server_address_attached(self, quick_trace, quick_profile):
        assert quick_trace.server_address == quick_profile.server_address

    def test_inbound_targets_server(self, quick_trace, quick_profile):
        inbound = quick_trace.inbound()
        assert np.all(inbound.dst_addrs == quick_profile.server_address.value)
        assert np.all(inbound.dst_ports == quick_profile.server_port)

    def test_outbound_sourced_from_server(self, quick_trace, quick_profile):
        outbound = quick_trace.outbound()
        assert np.all(outbound.src_addrs == quick_profile.server_address.value)

    def test_reproducible(self, quick_profile):
        a = generate_trace(quick_profile, 0.0, 60.0, seed=5)
        b = generate_trace(quick_profile, 0.0, 60.0, seed=5)
        assert len(a) == len(b)
        assert np.allclose(a.timestamps, b.timestamps)
        assert np.array_equal(a.payload_sizes, b.payload_sizes)

    def test_invalid_window_rejected(self, quick_profile):
        generator = PacketLevelGenerator(quick_profile, seed=1)
        with pytest.raises(ValueError):
            generator.generate(100.0, 50.0)
        with pytest.raises(ValueError):
            generator.generate(0.0, quick_profile.duration + 100.0)

    def test_window_subsets_consistent(self, quick_profile):
        population = simulate_population(quick_profile, seed=6)
        generator = PacketLevelGenerator(quick_profile, population=population, seed=6)
        full = generator.generate(0.0, 120.0)
        window = full.time_slice(30.0, 60.0)
        assert np.all(window.timestamps >= 30.0)
        assert np.all(window.timestamps < 60.0)


class TestTickStructure:
    def test_outbound_clustered_on_tick_grid(self, quick_trace, quick_profile):
        outbound = quick_trace.outbound()
        tick = quick_profile.tick_interval
        offsets = np.mod(outbound.timestamps, tick)
        in_window = offsets <= TICK_SERIALIZATION_WINDOW + 0.003
        assert in_window.mean() > 0.95

    def test_inbound_not_synchronised(self, quick_trace, quick_profile):
        inbound = quick_trace.inbound()
        tick = quick_profile.tick_interval
        offsets = np.mod(inbound.timestamps, tick)
        # inbound phase should be spread across the tick, not clustered
        in_window = offsets <= TICK_SERIALIZATION_WINDOW
        assert in_window.mean() < 0.5

    def test_payload_sizes_within_configured_bounds(self, quick_trace, quick_profile):
        inbound = quick_trace.inbound()
        game_in = inbound.payload_sizes[
            (inbound.payload_sizes >= quick_profile.inbound_payload_min)
        ]
        assert game_in.max() <= quick_profile.inbound_payload_max

    def test_outbound_rate_tracks_players(self, quick_profile):
        population = simulate_population(quick_profile, seed=6)
        generator = PacketLevelGenerator(quick_profile, population=population, seed=6)
        trace = generator.generate(60.0, 120.0)
        players = population.players_at(np.asarray([90.0]))[0]
        if players > 0:
            out_pps = len(trace.outbound()) / 60.0
            expected = (
                players
                * quick_profile.ticks_per_second
                * quick_profile.snapshot_send_probability
            )
            assert out_pps == pytest.approx(expected, rel=0.5)


class TestGapsAndDownloads:
    def test_map_change_gap_empty(self):
        profile = quick_test_profile(duration=400.0)
        trace = generate_trace(profile, 0.0, 400.0, seed=2)
        gap_start = profile.map_duration
        gap_end = gap_start + profile.map_change_downtime
        # handshake control packets may still appear; game traffic must not
        gap = trace.time_slice(gap_start + 0.1, gap_end - 0.1)
        assert len(gap) < 5

    def test_downloads_can_be_disabled(self, quick_profile):
        population = simulate_population(quick_profile, seed=6)
        generator = PacketLevelGenerator(quick_profile, population=population, seed=6)
        with_downloads = generator.generate(0.0, 120.0, include_downloads=True)
        without = PacketLevelGenerator(
            quick_profile, population=population, seed=6
        ).generate(0.0, 120.0, include_downloads=False)
        assert len(with_downloads) >= len(without)

    def test_handshake_packets_present(self, quick_profile):
        population = simulate_population(quick_profile, seed=6)
        sessions = [
            s for s in population.sessions if 0.0 < s.start < 100.0
        ]
        if not sessions:
            pytest.skip("no session starts in window for this seed")
        generator = PacketLevelGenerator(quick_profile, population=population, seed=6)
        trace = generator.generate(0.0, 120.0)
        session = sessions[0]
        near_start = trace.time_slice(session.start - 1e-6, session.start + 0.1)
        assert len(near_start.inbound()) >= 1
