"""Unit tests for packet-size, session, periodicity and self-similarity analyses."""

import numpy as np
import pytest

from repro.core.packetsize import PacketSizeAnalysis
from repro.core.periodicity import PeriodicityAnalysis
from repro.core.selfsimilarity import (
    SelfSimilarityReport,
    stitch_variance_time,
    variance_time_from_counts,
    variance_time_from_trace,
)
from repro.core.sessions import ClientBandwidthAnalysis
from repro.stats.hurst import VarianceTimePlot, VarianceTimePoint
from repro.trace.trace import Trace


class TestPacketSizeAnalysis:
    def test_means_match_trace(self, quick_trace):
        analysis = PacketSizeAnalysis.from_trace(quick_trace)
        assert analysis.mean_in == pytest.approx(
            float(quick_trace.inbound().payload_sizes.mean())
        )
        assert analysis.mean_out == pytest.approx(
            float(quick_trace.outbound().payload_sizes.mean())
        )

    def test_game_traffic_shape(self, quick_trace):
        analysis = PacketSizeAnalysis.from_trace(quick_trace)
        assert analysis.mean_in < 60.0
        assert analysis.mean_out > 100.0
        assert analysis.fraction_under(200.0) > 0.9
        assert analysis.outbound_spread() > analysis.inbound_spread()

    def test_pdf_mass_accounting(self, quick_trace):
        analysis = PacketSizeAnalysis.from_trace(quick_trace)
        in_range = analysis.total_pdf.probabilities.sum()
        assert in_range + analysis.truncation_excess() == pytest.approx(1.0, abs=1e-6)

    def test_cdf_direction_lookup(self, quick_trace):
        analysis = PacketSizeAnalysis.from_trace(quick_trace)
        assert analysis.fraction_under(60.0, "in") > analysis.fraction_under(
            60.0, "out"
        )

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            PacketSizeAnalysis.from_trace(Trace.empty())

    def test_one_direction_rejected(self, quick_trace):
        with pytest.raises(ValueError):
            PacketSizeAnalysis.from_trace(quick_trace.inbound())


class TestClientBandwidthAnalysis:
    def test_from_trace(self, quick_trace):
        analysis = ClientBandwidthAnalysis.from_trace(
            quick_trace, min_duration=10.0
        )
        assert analysis.flow_count > 0
        assert analysis.mean_bandwidth_bps() > 0

    def test_modem_clamp_visible(self, quick_trace):
        analysis = ClientBandwidthAnalysis.from_trace(
            quick_trace, min_duration=10.0
        )
        # most synthetic flows sit at/below ~62 kbps (modem + slack)
        assert analysis.fraction_at_or_below_modem() > 0.6
        assert (
            analysis.fraction_above_modem()
            == pytest.approx(1.0 - analysis.fraction_at_or_below_modem())
        )

    def test_too_strict_duration_raises(self, quick_trace):
        with pytest.raises(ValueError):
            ClientBandwidthAnalysis.from_trace(quick_trace, min_duration=1e6)


class TestPeriodicityAnalysis:
    def test_recovers_tick(self, quick_trace, quick_profile):
        window = quick_trace.time_slice(10.0, 70.0)
        analysis = PeriodicityAnalysis.from_trace(window)
        assert analysis.tick_matches(quick_profile.tick_interval)

    def test_outbound_burstier(self, quick_trace):
        window = quick_trace.time_slice(10.0, 70.0)
        analysis = PeriodicityAnalysis.from_trace(window)
        assert analysis.burstiness_out > analysis.burstiness_in
        assert analysis.peak_to_mean_out > 1.5

    def test_duty_cycle_near_one_in_five(self, quick_trace):
        window = quick_trace.time_slice(10.0, 70.0)
        analysis = PeriodicityAnalysis.from_trace(window)
        assert 0.1 < analysis.outbound_duty_cycle < 0.45

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PeriodicityAnalysis.from_trace(Trace.empty())

    def test_tick_matches_validation(self, quick_trace):
        window = quick_trace.time_slice(10.0, 70.0)
        analysis = PeriodicityAnalysis.from_trace(window)
        with pytest.raises(ValueError):
            analysis.tick_matches(0.0)


class TestSelfSimilarity:
    def test_variance_time_from_trace(self, quick_trace):
        window = quick_trace.time_slice(10.0, 110.0)
        plot = variance_time_from_trace(window, base_interval=0.01)
        assert len(plot.points) > 5
        assert plot.hurst(max_interval=0.05) < 0.5  # tick periodicity

    def test_stitching_extends_range(self):
        rng = np.random.default_rng(0)
        high_series = rng.poisson(10, 60_000).astype(float)
        high = variance_time_from_counts(high_series, 0.01)
        long_series = rng.poisson(1000, 5000).astype(float)
        long_plot = variance_time_from_counts(long_series, 1.0)
        stitched = stitch_variance_time(high, long_plot)
        assert stitched.points[-1].interval_seconds > high.points[-1].interval_seconds
        intervals = [p.interval_seconds for p in stitched.points]
        assert intervals == sorted(intervals)

    def test_stitching_continuity(self):
        rng = np.random.default_rng(1)
        high = variance_time_from_counts(rng.poisson(10, 60_000).astype(float), 0.01)
        long_plot = variance_time_from_counts(rng.poisson(1000, 5000).astype(float), 1.0)
        stitched = stitch_variance_time(high, long_plot)
        # log-variance must not jump discontinuously at the seam
        ys = [p.log_variance for p in stitched.points]
        jumps = np.abs(np.diff(ys))
        assert jumps.max() < 1.5

    def test_stitch_requires_overlap(self):
        high = VarianceTimePlot(
            base_interval=0.01,
            points=(
                VarianceTimePoint(1, 0.01, 1.0),
                VarianceTimePoint(2, 0.02, 0.5),
            ),
        )
        long_plot = VarianceTimePlot(
            base_interval=100.0,
            points=(
                VarianceTimePoint(1, 100.0, 1.0),
                VarianceTimePoint(2, 200.0, 0.5),
            ),
        )
        with pytest.raises(ValueError, match="overlap"):
            stitch_variance_time(high, long_plot)

    def test_report_regime_lookup(self):
        rng = np.random.default_rng(2)
        plot = variance_time_from_counts(rng.poisson(10, 100_000).astype(float), 0.01)
        report = SelfSimilarityReport.from_plot(plot, boundaries=(0.05, 10.0))
        with pytest.raises(KeyError):
            report.regime("nonexistent")
