"""Unit tests for checksum, Ethernet, IPv4, UDP codecs and overhead model."""

import struct

import pytest

from repro.net.addresses import IPv4Address, MACAddress
from repro.net.checksum import internet_checksum, verify_checksum
from repro.net.ethernet import (
    ETHERNET_HEADER_LEN,
    ETHERTYPE_IPV4,
    EthernetHeader,
)
from repro.net.headers import HeaderOverhead, OverheadModel, WIRE_OVERHEAD_UDP_V4
from repro.net.ip import IPV4_HEADER_LEN, IPv4Header, PROTO_TCP, PROTO_UDP
from repro.net.udp import (
    UDP_HEADER_LEN,
    UDPHeader,
    build_udp_datagram,
    parse_udp_datagram,
)

SRC = IPv4Address("10.0.0.1")
DST = IPv4Address("10.0.0.2")


class TestChecksum:
    def test_rfc1071_example(self):
        # canonical example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_verify_header_including_checksum(self):
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7, 0x22, 0x0D])
        assert verify_checksum(data)

    def test_odd_length_padded(self):
        assert internet_checksum(b"\xff") == internet_checksum(b"\xff\x00")

    def test_empty_input(self):
        assert internet_checksum(b"") == 0xFFFF


class TestEthernet:
    def test_pack_unpack_roundtrip(self):
        header = EthernetHeader(
            dst=MACAddress("02:00:00:00:00:01"),
            src=MACAddress("02:00:00:00:00:02"),
            ethertype=ETHERTYPE_IPV4,
        )
        assert EthernetHeader.unpack(header.pack()) == header

    def test_pack_length(self):
        header = EthernetHeader(MACAddress(1), MACAddress(2))
        assert len(header.pack()) == ETHERNET_HEADER_LEN

    def test_short_input_raises(self):
        with pytest.raises(ValueError):
            EthernetHeader.unpack(b"\x00" * 10)

    def test_bad_ethertype_raises(self):
        with pytest.raises(ValueError):
            EthernetHeader(MACAddress(1), MACAddress(2), ethertype=-1).pack()

    def test_frame_overhead(self):
        assert EthernetHeader.frame_overhead() == 18
        assert EthernetHeader.frame_overhead(include_fcs=False) == 14


class TestIPv4:
    def test_pack_unpack_roundtrip(self):
        header = IPv4Header(src=SRC, dst=DST, total_length=100, ttl=55,
                            identification=77)
        parsed = IPv4Header.unpack(header.pack())
        assert parsed == header

    def test_checksum_valid_on_wire(self):
        raw = IPv4Header(src=SRC, dst=DST, total_length=40).pack()
        assert verify_checksum(raw)

    def test_corrupted_checksum_detected(self):
        raw = bytearray(IPv4Header(src=SRC, dst=DST, total_length=40).pack())
        raw[8] ^= 0xFF  # flip TTL bits
        with pytest.raises(ValueError, match="checksum"):
            IPv4Header.unpack(bytes(raw))

    def test_unverified_parse_allows_corruption(self):
        raw = bytearray(IPv4Header(src=SRC, dst=DST, total_length=40).pack())
        raw[8] ^= 0xFF
        parsed = IPv4Header.unpack(bytes(raw), verify=False)
        assert parsed.ttl != 64

    def test_wrong_version_raises(self):
        raw = bytearray(IPv4Header(src=SRC, dst=DST, total_length=40).pack())
        raw[0] = (6 << 4) | 5
        with pytest.raises(ValueError, match="version"):
            IPv4Header.unpack(bytes(raw), verify=False)

    def test_options_unsupported(self):
        raw = bytearray(IPv4Header(src=SRC, dst=DST, total_length=40).pack())
        raw[0] = (4 << 4) | 6
        with pytest.raises(ValueError, match="options"):
            IPv4Header.unpack(bytes(raw), verify=False)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_length": 10},
            {"total_length": 70000},
            {"ttl": 300},
            {"protocol": 256},
            {"identification": -1},
            {"fragment_offset": 0x2000},
        ],
    )
    def test_field_validation(self, kwargs):
        base = {"src": SRC, "dst": DST, "total_length": 40}
        base.update(kwargs)
        with pytest.raises(ValueError):
            IPv4Header(**base).pack()

    def test_short_input_raises(self):
        with pytest.raises(ValueError):
            IPv4Header.unpack(b"\x45\x00")


class TestUDP:
    def test_pack_unpack_roundtrip(self):
        header = UDPHeader(27005, 27015, 48, 0)
        assert UDPHeader.unpack(header.pack()) == header

    def test_length_below_header_raises(self):
        with pytest.raises(ValueError):
            UDPHeader(1, 2, 4).pack()

    def test_port_out_of_range(self):
        with pytest.raises(ValueError):
            UDPHeader(70000, 2, 20).pack()

    def test_checksum_never_zero(self):
        # a payload engineered so the raw sum could be zero still yields 0xFFFF
        checksum = UDPHeader.compute_checksum(SRC, DST, 0, 0, b"")
        assert checksum != 0

    def test_datagram_roundtrip(self):
        packet = build_udp_datagram(SRC, DST, 27005, 27015, b"game-state")
        ip, udp, payload = parse_udp_datagram(packet)
        assert ip.src == SRC and ip.dst == DST
        assert udp.src_port == 27005 and udp.dst_port == 27015
        assert payload == b"game-state"

    def test_datagram_total_length(self):
        payload = b"x" * 100
        packet = build_udp_datagram(SRC, DST, 1, 2, payload)
        assert len(packet) == IPV4_HEADER_LEN + UDP_HEADER_LEN + 100

    def test_non_udp_rejected(self):
        raw = IPv4Header(src=SRC, dst=DST, total_length=40,
                         protocol=PROTO_TCP).pack() + b"\x00" * 20
        with pytest.raises(ValueError, match="not a UDP packet"):
            parse_udp_datagram(raw)

    def test_truncated_datagram_rejected(self):
        packet = build_udp_datagram(SRC, DST, 1, 2, b"abcdef")
        with pytest.raises(ValueError, match="truncated"):
            parse_udp_datagram(packet[:-3])


class TestOverheadModel:
    def test_default_matches_paper_gap(self):
        # Table II vs III implies ~54 B/packet of header accounting
        assert WIRE_OVERHEAD_UDP_V4.total == 54

    def test_wire_and_payload_inverse(self):
        model = OverheadModel()
        assert model.payload_size(model.wire_size(123)) == 123

    def test_runt_clamps_to_zero(self):
        model = OverheadModel()
        assert model.payload_size(10) == 0

    def test_totals(self):
        model = OverheadModel(HeaderOverhead(link=10, network=20, transport=8))
        assert model.wire_bytes_total(1000, 10) == 1000 + 380

    def test_negative_inputs_raise(self):
        model = OverheadModel()
        with pytest.raises(ValueError):
            model.wire_size(-1)
        with pytest.raises(ValueError):
            model.payload_size(-1)
        with pytest.raises(ValueError):
            model.wire_bytes_total(0, -1)
