"""End-to-end test of the fleet experiment and its CLI wiring."""

import numpy as np
import pytest

from repro.experiments import fleet, runner


@pytest.fixture(scope="module")
def output():
    return fleet.run(seed=0)


class TestFleetExperiment:
    def test_reproduces_within_tolerance(self, output):
        failing = [row.name for row in output.rows if not row.ok]
        assert output.passed, f"rows outside tolerance: {failing}"

    def test_parallel_matches_serial(self, output):
        row = output.row(
            "parallel (2 workers) aggregate bit-identical to serial"
        )
        assert row.measured == 1.0

    def test_aggregate_spans_sixteen_servers(self, output):
        aggregate = output.extras["aggregate"]
        assert len(aggregate) == int(fleet.HORIZON_S)
        curve = output.extras["provisioning_curve_bps"]
        assert curve.shape == (fleet.FACILITY_SERVERS,)
        assert np.all(np.diff(curve) > 0)  # every server adds demand

    def test_marginal_costs_sum_to_facility_peak(self, output):
        curve = output.extras["provisioning_curve_bps"]
        marginal = output.extras["marginal_cost_bps"]
        assert np.cumsum(marginal)[-1] == pytest.approx(curve[-1])

    def test_registered_in_runner(self):
        assert "fleet" in runner.REGISTRY
        assert runner.REGISTRY["fleet"] is fleet.run


class TestRunnerWorkersFlag:
    def test_list_includes_fleet(self, capsys):
        assert runner.main(["--list"]) == 0
        assert "fleet" in capsys.readouterr().out.split()

    def test_workers_flag_sets_default(self, capsys):
        from repro.fleet.execution import resolve_workers, set_default_workers

        try:
            # --list exits before running anything, but still parses/apply
            assert runner.main(["--workers", "1", "--list"]) == 0
            assert resolve_workers(None, 64) == 1
        finally:
            set_default_workers(None)

    def test_workers_flag_rejects_nonpositive(self, capsys):
        # argparse-level validation: clean usage error, exit code 2
        import pytest

        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--workers", "0", "--list"])
        assert excinfo.value.code == 2
        assert "error" in capsys.readouterr().err
