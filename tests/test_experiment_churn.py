"""End-to-end tests of the churn experiment and its CLI plumbing."""

import numpy as np
import pytest

from repro.core.facility import RecoveryStats
from repro.experiments import churn
from repro.matchmaking import POLICIES, SCENARIOS


@pytest.fixture(scope="module")
def output():
    return churn.run(seed=0)


class TestChurnExperiment:
    def test_all_rows_pass(self, output):
        assert output.passed, output.render()

    def test_all_policies_swept(self, output):
        assert set(output.extras["results"]) == set(POLICIES)
        assert set(output.extras["occupancy_recovery"]) == set(POLICIES)
        assert set(output.extras["rtt_recovery"]) == set(POLICIES)

    def test_qoe_enabled_everywhere(self, output):
        for result in output.extras["results"].values():
            assert result.config.qoe.enabled
            assert result.scenario_name == "flash_crowd"

    def test_recovery_metrics_are_recovery_stats(self, output):
        for stats in output.extras["occupancy_recovery"].values():
            assert isinstance(stats, RecoveryStats)
            assert stats.baseline > 0
            assert stats.overshoot >= 0 and stats.undershoot >= 0

    def test_recovery_discriminates_policies(self, output):
        # the acceptance criterion: at least two policies report
        # different trajectories
        keyed = {
            (s.time_to_baseline, s.overshoot, s.undershoot)
            for s in output.extras["occupancy_recovery"].values()
        }
        assert len(keyed) >= 2

    def test_perturbation_visible(self, output):
        stats = output.extras["occupancy_recovery"][churn.REFERENCE_POLICY]
        assert stats.peak_deviation > churn.RECOVERY_TOLERANCE * stats.baseline

    def test_coupling_changes_trajectory(self, output):
        reference = output.extras["results"][churn.REFERENCE_POLICY]
        uncoupled = output.extras["uncoupled"]
        assert not uncoupled.config.qoe.enabled
        assert not np.array_equal(uncoupled.occupancy, reference.occupancy)

    def test_notes_report_per_policy_recovery(self, output):
        text = output.render()
        for name in POLICIES:
            assert name in text
        assert "occ ttb" in text
        assert "qoe mult" in text

    def test_scenario_override(self):
        churn.set_default_scenario("patch_day")
        try:
            out = churn.run(seed=0)
        finally:
            churn.set_default_scenario(None)
        assert out.passed, out.render()
        assert out.extras["scenario"].name == "patch_day"

    def test_qoe_overrides_reach_the_config(self):
        churn.set_default_qoe_duration_floor(0.5)
        churn.set_default_qoe_rtt_good(20.0)
        churn.set_default_qoe_rtt_scale(80.0)
        churn.set_default_qoe_balk_escalation(0.9)
        try:
            out = churn.run(seed=0)
        finally:
            churn.set_default_qoe_duration_floor(None)
            churn.set_default_qoe_rtt_good(None)
            churn.set_default_qoe_rtt_scale(None)
            churn.set_default_qoe_balk_escalation(None)
        qoe = out.extras["config"].qoe
        assert qoe.duration_floor == 0.5
        assert qoe.rtt_good_ms == 20.0
        assert qoe.rtt_scale_ms == 80.0
        assert qoe.balk_escalation == 0.9

    def test_bad_overrides_rejected(self):
        with pytest.raises(KeyError):
            churn.set_default_scenario("tsunami")
        with pytest.raises(ValueError):
            churn.set_default_qoe_duration_floor(0.0)
        with pytest.raises(ValueError):
            churn.set_default_qoe_rtt_scale(-1.0)
        with pytest.raises(ValueError):
            churn.set_default_qoe_balk_escalation(2.0)
        # a failed setter leaves the default untouched
        assert churn._default_scenario is None

    def test_every_stock_scenario_passes(self):
        for name in sorted(SCENARIOS):
            if name == churn.SCENARIO:
                continue  # covered by the module fixture
            churn.set_default_scenario(name)
            try:
                out = churn.run(seed=0)
            finally:
                churn.set_default_scenario(None)
            assert out.passed, f"{name}: {out.render()}"

    def test_deterministic_across_runs(self, output):
        again = churn.run(seed=0)
        first = output.extras["results"]["least_loaded"]
        second = again.extras["results"]["least_loaded"]
        np.testing.assert_array_equal(first.occupancy, second.occupancy)
        assert first.admission == second.admission
