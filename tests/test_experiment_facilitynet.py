"""End-to-end test of the facilitynet experiment and its CLI wiring."""

import numpy as np
import pytest

from repro.experiments import facilitynet, runner


@pytest.fixture(scope="module")
def output():
    return facilitynet.run(seed=0)


class TestFacilitynetExperiment:
    def test_reproduces_within_tolerance(self, output):
        failing = [row.name for row in output.rows if not row.ok]
        assert output.passed, f"rows outside tolerance: {failing}"

    def test_uplink_loss_monotone_over_sweep(self, output):
        sweep = output.extras["sweep"]
        assert sweep.ratios == facilitynet.RATIOS
        assert np.all(np.diff(sweep.uplink_loss) >= 0.0)
        assert sweep.uplink_loss[0] == 0.0
        assert sweep.uplink_loss[-1] > 0.0

    def test_uplink_saturates_first(self, output):
        sweep = output.extras["sweep"]
        assert sweep.saturating_tier() == "uplink"
        # headroom tiers never drop anywhere in the sweep
        assert np.all(sweep.tier_loss["rack"] == 0.0)
        assert np.all(sweep.tier_loss["core"] == 0.0)

    def test_worker_counts_bit_identical(self, output):
        assert output.extras["parallel_identical"] is True
        row = output.row(
            "per-hop results bit-identical (1 vs 4 workers)"
        )
        assert row.measured == 1.0

    def test_latency_budget_dominated_by_uplink(self, output):
        budget = output.extras["latency_budget"]
        assert budget.dominant_tier == "uplink"
        assert budget.total_mean_s > 0.0

    def test_registered_in_runner(self):
        assert "facilitynet" in runner.REGISTRY
        assert runner.REGISTRY["facilitynet"] is facilitynet.run
        assert "facilitynet" in runner.DESCRIPTIONS
