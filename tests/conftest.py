"""Shared fixtures: small, fast simulation artifacts reused across tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gameserver.config import ServerProfile, quick_test_profile
from repro.gameserver.generator import PacketLevelGenerator
from repro.gameserver.population import PopulationResult, simulate_population
from repro.net.addresses import IPv4Address
from repro.trace.packet import Direction
from repro.trace.trace import Trace, TraceBuilder


@pytest.fixture(scope="session")
def quick_profile() -> ServerProfile:
    """A 10-minute, 8-slot profile for fast unit tests."""
    return quick_test_profile()


@pytest.fixture(scope="session")
def quick_population(quick_profile) -> PopulationResult:
    """Session-level result over the quick profile."""
    return simulate_population(quick_profile, seed=11)


@pytest.fixture(scope="session")
def quick_trace(quick_profile, quick_population) -> Trace:
    """Packet-level trace of the quick profile's first 120 seconds."""
    generator = PacketLevelGenerator(
        quick_profile, population=quick_population, seed=11
    )
    return generator.generate(0.0, 120.0)


@pytest.fixture(scope="session")
def full_profile() -> ServerProfile:
    """The paper profile with a 2-hour horizon (keeps tests quick)."""
    from repro.gameserver.config import olygamer_week

    return olygamer_week().scaled(7200.0)


@pytest.fixture(scope="session")
def full_population(full_profile) -> PopulationResult:
    """Session-level result over the 2-hour paper profile."""
    return simulate_population(full_profile, seed=5)


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh seeded generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def synthetic_trace() -> Trace:
    """A tiny hand-built bidirectional trace with known totals.

    10 inbound packets of 40 B at t = 0.0,0.1,... and 5 outbound of
    130 B at t = 0.05,0.25,...; server at 10.0.0.2.
    """
    server = IPv4Address("10.0.0.2")
    builder = TraceBuilder(server_address=server)
    for i in range(10):
        builder.add(0.1 * i, Direction.IN, IPv4Address("10.0.0.1").value,
                    server.value, 27005, 27015, 40)
    for i in range(5):
        builder.add(0.05 + 0.2 * i, Direction.OUT, server.value,
                    IPv4Address("10.0.0.1").value, 27015, 27005, 130)
    return builder.build()
