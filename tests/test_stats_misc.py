"""Unit tests for regression, descriptive stats, and autocorrelation."""

import numpy as np
import pytest

from repro.stats.autocorr import (
    autocorrelation,
    burstiness_index,
    dominant_period,
    peak_to_mean_ratio,
)
from repro.stats.descriptive import (
    relative_error,
    summarize,
    weighted_mean,
    within_factor,
)
from repro.stats.regression import fit_line


class TestFitLine:
    def test_exact_line_recovered(self):
        x = np.asarray([0.0, 1.0, 2.0, 3.0])
        fit = fit_line(x, 2.0 * x + 1.0)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_line(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 10, 200)
        y = 3.0 * x - 5.0 + rng.normal(0, 0.5, x.size)
        fit = fit_line(x, y)
        assert fit.slope == pytest.approx(3.0, abs=0.1)
        assert fit.r_squared > 0.98

    def test_predict_and_residuals(self):
        x = np.asarray([0.0, 1.0, 2.0])
        fit = fit_line(x, x)
        assert fit.predict(5.0) == pytest.approx(5.0)
        assert np.allclose(fit.residuals(x, x), 0.0)

    def test_constant_y_r_squared_one(self):
        fit = fit_line(np.asarray([0.0, 1.0]), np.asarray([3.0, 3.0]))
        assert fit.slope == 0.0
        assert fit.r_squared == 1.0

    def test_degenerate_inputs(self):
        with pytest.raises(ValueError):
            fit_line(np.asarray([1.0]), np.asarray([1.0]))
        with pytest.raises(ValueError):
            fit_line(np.asarray([1.0, 1.0]), np.asarray([1.0, 2.0]))
        with pytest.raises(ValueError):
            fit_line(np.asarray([1.0, 2.0]), np.asarray([1.0]))


class TestDescriptive:
    def test_summarize(self):
        summary = summarize(np.asarray([1.0, 2.0, 3.0, 4.0]))
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0

    def test_summarize_empty(self):
        assert summarize(np.asarray([])).count == 0

    def test_cv(self):
        summary = summarize(np.asarray([10.0, 10.0]))
        assert summary.coefficient_of_variation == 0.0

    def test_weighted_mean(self):
        assert weighted_mean(
            np.asarray([1.0, 3.0]), np.asarray([3.0, 1.0])
        ) == pytest.approx(1.5)

    def test_weighted_mean_zero_weights(self):
        with pytest.raises(ValueError):
            weighted_mean(np.asarray([1.0]), np.asarray([0.0]))

    def test_relative_error(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == float("inf")

    @pytest.mark.parametrize(
        "measured,reference,factor,expected",
        [
            (100.0, 100.0, 1.0, True),
            (149.0, 100.0, 1.5, True),
            (151.0, 100.0, 1.5, False),
            (67.0, 100.0, 1.5, True),
            (66.0, 100.0, 1.5, False),
            (0.0, 0.0, 2.0, True),
            (0.0, 1.0, 2.0, False),
        ],
    )
    def test_within_factor(self, measured, reference, factor, expected):
        assert within_factor(measured, reference, factor) is expected

    def test_within_factor_invalid(self):
        with pytest.raises(ValueError):
            within_factor(1.0, 1.0, 0.5)


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        series = np.random.default_rng(0).normal(size=100)
        assert autocorrelation(series, 5)[0] == 1.0

    def test_periodic_series_peaks_at_period(self):
        series = np.tile([10.0, 0.0, 0.0, 0.0, 0.0], 200)
        acf = autocorrelation(series, 12)
        assert acf[5] > 0.9
        assert acf[10] > 0.9
        assert acf[3] < 0.0

    def test_constant_rejected(self):
        with pytest.raises(ValueError):
            autocorrelation(np.ones(100), 5)

    def test_lag_bounds(self):
        series = np.random.default_rng(0).normal(size=10)
        with pytest.raises(ValueError):
            autocorrelation(series, 10)
        with pytest.raises(ValueError):
            autocorrelation(series, -1)

    def test_dominant_period_recovers_tick(self):
        series = np.tile([22.0, 0.0, 0.0, 0.0, 0.0], 1000)
        series += np.random.default_rng(1).normal(0, 0.5, series.size)
        period = dominant_period(series, 0.01, max_period=0.3, min_period=0.02)
        assert period == pytest.approx(0.05)

    def test_dominant_period_bad_window(self):
        with pytest.raises(ValueError):
            dominant_period(np.ones(10), 0.01, max_period=0.001)


class TestBurstiness:
    def test_poisson_near_one(self):
        counts = np.random.default_rng(0).poisson(8, 100_000).astype(float)
        assert burstiness_index(counts) == pytest.approx(1.0, abs=0.05)

    def test_bursty_series_above_one(self):
        series = np.tile([50.0, 0.0, 0.0, 0.0, 0.0], 100)
        assert burstiness_index(series) > 5.0

    def test_zero_mean(self):
        assert burstiness_index(np.zeros(10)) == 0.0

    def test_peak_to_mean(self):
        assert peak_to_mean_ratio(np.asarray([1.0, 1.0, 4.0])) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            burstiness_index(np.asarray([]))
        with pytest.raises(ValueError):
            peak_to_mean_ratio(np.asarray([]))
