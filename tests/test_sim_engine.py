"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim.engine import EventScheduler, SimulationError


class TestScheduling:
    def test_starts_at_given_time(self):
        assert EventScheduler(start_time=5.0).now == 5.0

    def test_schedule_and_run_until(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, lambda: fired.append(sched.now))
        sched.schedule(2.0, lambda: fired.append(sched.now))
        executed = sched.run_until(1.5)
        assert executed == 1
        assert fired == [1.0]
        assert sched.now == 1.5

    def test_event_exactly_at_horizon_runs(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(2.0, lambda: fired.append(True))
        sched.run_until(2.0)
        assert fired == [True]

    def test_schedule_in_past_raises(self):
        sched = EventScheduler()
        sched.run_until(10.0)
        with pytest.raises(SimulationError):
            sched.schedule(5.0, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            EventScheduler().schedule_in(-1.0, lambda: None)

    def test_run_until_backwards_raises(self):
        sched = EventScheduler()
        sched.run_until(10.0)
        with pytest.raises(SimulationError):
            sched.run_until(5.0)

    def test_schedule_at_current_time_allowed(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(0.0, lambda: fired.append(True))
        sched.run_until(0.0)
        assert fired == [True]


class TestOrdering:
    def test_simultaneous_events_run_in_insertion_order(self):
        sched = EventScheduler()
        order = []
        sched.schedule(1.0, lambda: order.append("a"))
        sched.schedule(1.0, lambda: order.append("b"))
        sched.run_until(1.0)
        assert order == ["a", "b"]

    def test_priority_overrides_insertion_order(self):
        sched = EventScheduler()
        order = []
        sched.schedule(1.0, lambda: order.append("late"), priority=1)
        sched.schedule(1.0, lambda: order.append("early"), priority=-1)
        sched.run_until(1.0)
        assert order == ["early", "late"]

    def test_callbacks_can_schedule_more_events(self):
        sched = EventScheduler()
        fired = []

        def chain():
            fired.append(sched.now)
            if len(fired) < 3:
                sched.schedule_in(1.0, chain)

        sched.schedule(1.0, chain)
        sched.run()
        assert fired == [1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sched = EventScheduler()
        fired = []
        event = sched.schedule(1.0, lambda: fired.append(True))
        assert event.cancel()
        sched.run_until(2.0)
        assert fired == []

    def test_double_cancel_returns_false(self):
        sched = EventScheduler()
        event = sched.schedule(1.0, lambda: None)
        assert event.cancel()
        assert not event.cancel()

    def test_pending_count_excludes_cancelled(self):
        sched = EventScheduler()
        sched.schedule(1.0, lambda: None)
        event = sched.schedule(2.0, lambda: None)
        event.cancel()
        assert sched.pending_count == 1


class TestPeriodic:
    def test_fires_at_fixed_interval(self):
        sched = EventScheduler()
        times = []
        sched.schedule_periodic(0.5, lambda: times.append(sched.now))
        sched.run_until(2.2)
        assert times == pytest.approx([0.5, 1.0, 1.5, 2.0])

    def test_stop_halts_firing(self):
        sched = EventScheduler()
        times = []
        stop = sched.schedule_periodic(0.5, lambda: times.append(sched.now))
        sched.run_until(1.0)
        stop()
        sched.run_until(3.0)
        assert times == pytest.approx([0.5, 1.0])

    def test_custom_start(self):
        sched = EventScheduler()
        times = []
        sched.schedule_periodic(1.0, lambda: times.append(sched.now), start=0.25)
        sched.run_until(2.5)
        assert times == pytest.approx([0.25, 1.25, 2.25])

    def test_non_positive_interval_raises(self):
        with pytest.raises(SimulationError):
            EventScheduler().schedule_periodic(0.0, lambda: None)

    def test_no_drift_accumulation(self):
        sched = EventScheduler()
        times = []
        sched.schedule_periodic(0.05, lambda: times.append(sched.now))
        sched.run_until(100.0)
        # the 2000th tick must land on the exact grid, not drifted floats
        assert len(times) >= 1999
        assert times[-1] == pytest.approx(0.05 * len(times), abs=1e-6)


class TestBounds:
    def test_max_events_guard(self):
        sched = EventScheduler()

        def storm():
            sched.schedule_in(0.001, storm)

        sched.schedule(0.0, storm)
        with pytest.raises(SimulationError):
            sched.run_until(1000.0, max_events=100)

    def test_run_drains_heap(self):
        sched = EventScheduler()
        for i in range(5):
            sched.schedule(float(i), lambda: None)
        assert sched.run() == 5
        assert sched.pending_count == 0
        assert sched.executed_count == 5
