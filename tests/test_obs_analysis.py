"""The read side: trace directories load back faithfully.

:mod:`repro.obs.analysis` must reconstruct what the writer observed —
span forests with correct links, metric totals, facility heatmaps —
from the artifact files alone, and must tolerate the streaming
contract's failure mode (a torn final line from a killed writer) at
*any* truncation offset.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.obs import analysis
from repro.obs.analysis import SpanForest
from repro.obs.export import read_jsonl


@pytest.fixture(autouse=True)
def _clean_obs_state():
    yield
    if obs.current_session() is not None:
        obs.end_trace_session()
    obs.trace.install_tracer(None)


def _record(rid, parent, name, start, wall, depth=0, **extra):
    merged = {
        "id": rid,
        "parent": parent,
        "name": name,
        "path": name,
        "depth": depth,
        "start_s": start,
        "wall_s": wall,
        "peak_rss_kb": 0.0,
    }
    merged.update(extra)
    return merged


class TestSpanForest:
    def _forest(self):
        # run(10s) -> [phase_a(6s) -> leaf(5s), phase_b(3s)]
        return SpanForest.from_records(
            [
                _record(0, None, "run", 0.0, 10.0),
                _record(1, 0, "phase_a", 0.0, 6.0, depth=1),
                _record(2, 1, "leaf", 0.5, 5.0, depth=2),
                _record(3, 0, "phase_b", 6.0, 3.0, depth=1),
            ]
        )

    def test_linking_and_iteration(self):
        forest = self._forest()
        assert len(forest) == 4
        assert [node.name for node in forest.roots] == ["run"]
        assert [node.name for node in forest] == [
            "run", "phase_a", "leaf", "phase_b",
        ]

    def test_self_wall_excludes_children(self):
        forest = self._forest()
        run = forest.roots[0]
        assert run.self_wall_s == pytest.approx(10.0 - 6.0 - 3.0)
        phase_a = run.children[0]
        assert phase_a.self_wall_s == pytest.approx(1.0)

    def test_rollup_heaviest_first(self):
        rollups = self._forest().rollup()
        assert [r.name for r in rollups] == [
            "run", "phase_a", "leaf", "phase_b",
        ]
        run = rollups[0]
        assert run.calls == 1
        assert run.share == pytest.approx(1.0)

    def test_critical_path_greedy_descent(self):
        path = self._forest().critical_path()
        assert [node.name for node in path] == ["run", "phase_a", "leaf"]

    def test_v1_fallback_without_ids(self):
        """Legacy records link by the depth/file-order walk invariant."""
        records = [
            {"name": "run", "depth": 0, "wall_s": 2.0},
            {"name": "child", "depth": 1, "wall_s": 1.0},
            {"name": "second_root", "depth": 0, "wall_s": 0.5},
        ]
        forest = SpanForest.from_records(records)
        assert [node.name for node in forest.roots] == [
            "run", "second_root",
        ]
        assert [c.name for c in forest.roots[0].children] == ["child"]


class TestTornTail:
    def _write_session(self, root):
        obs.start_trace_session(root, seed=0)
        for index in range(8):
            with obs.span("work", index=index):
                with obs.span("sub"):
                    pass
        obs.end_trace_session()

    def test_recovers_complete_records_at_any_offset(self, tmp_path):
        """Truncate spans.jsonl at every byte offset: every complete
        line is kept, the torn tail is skipped, nothing raises."""
        self._write_session(tmp_path / "trace")
        path = tmp_path / "trace" / "spans.jsonl"
        raw = path.read_bytes()
        full = read_jsonl(path)
        assert len(full) == 16  # 8 × (work + sub)

        torn = tmp_path / "torn.jsonl"
        # every offset is cheap enough to sweep exhaustively
        for offset in range(len(raw) + 1):
            torn.write_bytes(raw[:offset])
            recovered = read_jsonl(torn)
            expected = raw[:offset].count(b"\n")
            # a cut landing exactly before a newline leaves a final
            # line that is itself complete — the reader keeps it
            tail = raw[:offset].rsplit(b"\n", 1)[-1]
            if tail:
                try:
                    json.loads(tail)
                    expected += 1
                except ValueError:
                    pass
            assert len(recovered) == expected, f"offset {offset}"
            assert recovered == full[:expected]

    def test_loader_tolerates_torn_spans(self, tmp_path):
        self._write_session(tmp_path / "trace")
        path = tmp_path / "trace" / "spans.jsonl"
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 7])  # tear the last record

        run = analysis.load_run(tmp_path / "trace")
        assert len(run.spans) == 15
        assert len(run.forest) == 15

    def test_missing_manifest_is_a_clear_error(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(FileNotFoundError, match="manifest.json"):
            analysis.load_run(tmp_path / "empty")

    def test_tail_recovers_full_sequence_at_any_offset(self, tmp_path):
        """The every-byte-offset sweep, for the live tail reader: a tail
        that saw the file truncated at *any* offset, then the rest, must
        deliver exactly the writer's record sequence — no torn record,
        no duplicate, no loss."""
        from repro.obs.live import tail_jsonl

        self._write_session(tmp_path / "trace")
        path = tmp_path / "trace" / "spans.jsonl"
        raw = path.read_bytes()
        full = read_jsonl(path)

        partial = tmp_path / "partial.jsonl"
        for offset in range(len(raw) + 1):
            partial.write_bytes(raw[:offset])
            tail = tail_jsonl(partial)
            first = tail.poll()
            partial.write_bytes(raw)  # writer completes the file
            second = tail.poll()
            assert first + second == full, f"offset {offset}"


class TestCompare:
    def _session(self, root, seed, amount):
        obs.start_trace_session(root, seed=seed)
        obs.registry().counter("test.things").inc(amount)
        obs.end_trace_session()
        return analysis.load_run(root)

    def test_identical_runs_compare_clean(self, tmp_path):
        run_a = self._session(tmp_path / "a", seed=0, amount=2)
        run_b = self._session(tmp_path / "b", seed=0, amount=2)

        comparison = analysis.compare(run_a, run_b)
        assert comparison.comparable
        assert comparison.changed_metrics() == []
        assert "identical" in comparison.render()

    def test_diverging_runs_flag_provenance_and_metrics(self, tmp_path):
        run_a = self._session(tmp_path / "a", seed=0, amount=2)
        run_b = self._session(tmp_path / "b", seed=1, amount=3)

        comparison = analysis.compare(run_a, run_b)
        assert comparison.provenance["seed"] == (0, 1)
        changed = comparison.changed_metrics()
        assert [diff.name for diff in changed] == ["test.things"]
        assert changed[0].relative_change == pytest.approx(0.5)
        assert "test.things" in comparison.render()


class TestBenchTrajectory:
    def _write(self, path, values):
        path.write_text(
            json.dumps({"records": [{"kernel_pps": v} for v in values]})
        )

    def test_regression_flagged_against_prior_median(self, tmp_path):
        path = tmp_path / "BENCH_obs_test.json"
        self._write(path, [100.0, 110.0, 105.0, 50.0])

        regressions = analysis.check_bench_trajectory(path)
        assert len(regressions) == 1
        assert regressions[0].metric == "kernel_pps"
        assert regressions[0].median_prior == pytest.approx(105.0)
        assert regressions[0].change == pytest.approx(-55 / 105)
        assert "kernel_pps" in regressions[0].describe()

    def test_within_threshold_is_clean(self, tmp_path):
        path = tmp_path / "BENCH_obs_test.json"
        self._write(path, [100.0, 110.0, 105.0, 95.0])
        assert analysis.check_bench_trajectory(path) == []

    def test_soft_failure_inputs_never_raise(self, tmp_path):
        """CI must never break on a missing/short/corrupt trajectory."""
        assert analysis.check_bench_trajectory(tmp_path / "absent.json") == []

        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{not json")
        assert analysis.check_bench_trajectory(corrupt) == []

        single = tmp_path / "single.json"
        self._write(single, [100.0])
        assert analysis.check_bench_trajectory(single) == []

    def test_threshold_validated(self, tmp_path):
        with pytest.raises(ValueError):
            analysis.check_bench_trajectory(tmp_path / "x.json", threshold=0)


class TestFacilityViews:
    @pytest.fixture(scope="class")
    def traced_run(self, tmp_path_factory):
        from repro.fleet.profiles import hosting_facility
        from repro.matchmaking import PoolConfig, simulate_matchmaking

        root = tmp_path_factory.mktemp("facility") / "trace"
        fleet = hosting_facility(n_servers=3, duration=900.0, seed=3)
        config = PoolConfig.for_fleet(
            fleet,
            demand_ratio=3.0,
            epoch_length=60.0,
            session_duration_mean=180.0,
            session_duration_min=5.0,
        )
        obs.start_trace_session(root, seed=3)
        try:
            simulate_matchmaking(fleet, "latency_aware", config)
        finally:
            obs.end_trace_session()
        return analysis.load_run(root)

    def test_heatmap_folds_occupancy_by_region(self, traced_run):
        heatmaps = analysis.occupancy_heatmaps(traced_run)
        assert list(heatmaps) == ["latency_aware"]
        heatmap = heatmaps["latency_aware"]

        raw = traced_run.arrays("matchmaking_occupancy_latency_aware")
        assert heatmap.matrix.shape == (
            len(heatmap.region_names),
            raw["occupancy"].shape[1],
        )
        # folding by region loses nothing: totals are conserved
        assert heatmap.matrix.sum() == raw["occupancy"].sum()
        assert heatmap.capacities.sum() == raw["capacities"].sum()
        utilization = heatmap.utilization()
        assert np.all(utilization >= 0.0)
        assert np.all(utilization <= 1.0)

    def test_frontier_from_artifacts(self, traced_run):
        frontier = analysis.occupancy_rtt_frontier(traced_run)
        assert [point.policy for point in frontier] == ["latency_aware"]
        point = frontier[0]
        assert 0.0 < point.utilization <= 1.0
        assert point.sessions > 0
        assert np.isfinite(point.mean_rtt_ms) and point.mean_rtt_ms > 0
