"""Golden regression pins for the matchmaking experiment's summaries.

A small fixed-seed scenario (3 servers, 15 minutes, saturating pool,
seed 3) run through every selection policy, with the resulting
``describe()`` lines, latency statistics, frontier and RTT geometry
pinned to literal values.  Any engine, policy or RTT refactor that
changes placement — or merely the reported numbers — fails here first,
loudly, instead of silently drifting the experiment's claims.  If a
change is *intentional*, regenerate the constants below from the
fixture scenario and say so in the commit.
"""

import numpy as np
import pytest

from repro.core.facility import occupancy_rtt_frontier
from repro.fleet.profiles import hosting_facility
from repro.matchmaking import (
    POLICIES,
    PoolConfig,
    RttMatrix,
    simulate_matchmaking,
)

SEED = 3
N_SERVERS = 3
HORIZON = 900.0

#: Exact one-line summaries, keyed by policy (the describe() goldens).
GOLDEN_DESCRIBE = {
    "random": (
        "        random: 385 admitted / 805 attempts, rejection  52.2%, "
        "utilization 94.0%, affinity 10.4%, rtt   56.3 ms"
    ),
    "least_loaded": (
        "  least_loaded: 403 admitted / 796 attempts, rejection  49.4%, "
        "utilization 98.1%, affinity 13.2%, rtt   59.5 ms"
    ),
    "sticky": (
        "        sticky: 395 admitted / 797 attempts, rejection  50.4%, "
        "utilization 98.1%, affinity 16.5%, rtt   57.8 ms"
    ),
    "capacity_aware": (
        "capacity_aware: 395 admitted / 1248 attempts, rejection  68.3%, "
        "utilization 98.3%, affinity 10.9%, rtt   54.9 ms"
    ),
    "lowest_rtt": (
        "    lowest_rtt: 401 admitted / 797 attempts, rejection  49.7%, "
        "utilization 97.3%, affinity 13.7%, rtt   44.7 ms"
    ),
    "latency_aware": (
        " latency_aware: 409 admitted / 797 attempts, rejection  48.7%, "
        "utilization 97.5%, affinity 10.8%, rtt   46.9 ms"
    ),
}

#: (admitted count, mean RTT ms, p95 RTT ms) per policy.
GOLDEN_LATENCY = {
    "random": (385, 56.33198627467284, 104.98107230915922),
    "least_loaded": (403, 59.526662843388905, 104.98107230915922),
    "sticky": (395, 57.82454311196402, 118.17737461992868),
    "capacity_aware": (395, 54.87107372711616, 104.98107230915922),
    "lowest_rtt": (401, 44.65615799653594, 104.98107230915922),
    "latency_aware": (409, 46.87018975794818, 104.98107230915922),
}

#: The occupancy-vs-RTT Pareto frontier of this scenario.
GOLDEN_FRONTIER = ("capacity_aware", "latency_aware", "lowest_rtt")

#: RTT geometry fingerprint: corner entry and whole-matrix sum (ms).
GOLDEN_RTT_CORNER = 11.166165027712966
GOLDEN_RTT_SUM = 724.3346093215944


@pytest.fixture(scope="module")
def scenario():
    fleet = hosting_facility(n_servers=N_SERVERS, duration=HORIZON, seed=SEED)
    config = PoolConfig.for_fleet(
        fleet,
        demand_ratio=3.0,
        epoch_length=60.0,
        session_duration_mean=180.0,
        session_duration_min=5.0,
    )
    rtt = RttMatrix.for_fleet(fleet, config.region_profile, seed=SEED)
    return fleet, config, rtt


@pytest.fixture(scope="module")
def results(scenario):
    fleet, config, rtt = scenario
    return {
        name: simulate_matchmaking(fleet, name, config, rtt=rtt)
        for name in POLICIES
    }


class TestGoldenSummaries:
    def test_every_policy_is_pinned(self):
        assert set(GOLDEN_DESCRIBE) == set(POLICIES)
        assert set(GOLDEN_LATENCY) == set(POLICIES)

    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_describe_line_exact(self, results, name):
        assert results[name].describe() == GOLDEN_DESCRIBE[name]

    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_latency_stats_pinned(self, results, name):
        admitted, mean_ms, p95_ms = GOLDEN_LATENCY[name]
        stats = results[name].latency_stats()
        assert stats.count == admitted
        assert stats.mean_ms == pytest.approx(mean_ms, rel=1e-9)
        assert stats.p_ms == pytest.approx(p95_ms, rel=1e-9)

    def test_frontier_pinned(self, results):
        points = {
            name: (
                result.occupancy_stats().utilization,
                result.latency_stats().mean_ms,
            )
            for name, result in results.items()
        }
        assert occupancy_rtt_frontier(points) == GOLDEN_FRONTIER

    def test_rtt_geometry_pinned(self, scenario):
        _, _, rtt = scenario
        assert float(rtt.matrix[0, 0]) == pytest.approx(
            GOLDEN_RTT_CORNER, rel=1e-9
        )
        assert float(rtt.matrix.sum()) == pytest.approx(
            GOLDEN_RTT_SUM, rel=1e-9
        )

    def test_latency_aware_beats_least_loaded_here_too(self, results):
        # the acceptance-criterion shape holds even on this tiny fixture:
        # strictly lower mean RTT at a few points of utilization at most
        aware = results["latency_aware"]
        baseline = results["least_loaded"]
        assert aware.latency_stats().mean_ms < baseline.latency_stats().mean_ms
        assert (
            aware.occupancy_stats().utilization
            >= baseline.occupancy_stats().utilization - 0.05
        )
