"""Integration tests: streaming pipeline, determinism, and reports."""

import numpy as np
import pytest

from repro.facilitynet.pipeline import (
    FacilityPipeline,
    finish_uplink,
    rack_ingress_traces,
    run_fabric,
    run_hops,
)
from repro.facilitynet.report import (
    TIER_ORDER,
    first_dropping_tier,
    ingress_envelope,
    latency_budget,
    sweep_uplink_oversubscription,
)
from repro.facilitynet.topology import TIER_UPLINK, build_topology, provision_from_envelope
from repro.fleet.profiles import hosting_facility

N_SERVERS = 4
N_RACKS = 2
WINDOW = (120.0, 180.0)
HORIZON_S = 300.0


@pytest.fixture(scope="module")
def fleet():
    return hosting_facility(n_servers=N_SERVERS, duration=HORIZON_S, seed=0)


@pytest.fixture(scope="module")
def shape():
    return build_topology(
        N_SERVERS, N_RACKS, per_server_pps=1.0, per_server_bps=1.0
    )


@pytest.fixture(scope="module")
def ingress(fleet, shape):
    return rack_ingress_traces(fleet, shape, *WINDOW, workers=1)


@pytest.fixture(scope="module")
def envelope(ingress):
    return ingress_envelope(ingress, *WINDOW, percentile=100.0)


class TestRackIngress:
    def test_one_trace_per_rack_with_traffic(self, ingress):
        assert len(ingress) == N_RACKS
        for trace in ingress:
            assert len(trace) > 0
            assert np.all(np.diff(trace.timestamps) >= 0)

    def test_sharded_matches_serial_bit_identically(self, fleet, shape, ingress):
        parallel = rack_ingress_traces(fleet, shape, *WINDOW, workers=2)
        for serial_trace, parallel_trace in zip(ingress, parallel):
            assert len(serial_trace) == len(parallel_trace)
            assert np.array_equal(
                serial_trace.timestamps, parallel_trace.timestamps
            )
            assert np.array_equal(
                serial_trace.payload_sizes, parallel_trace.payload_sizes
            )
            assert np.array_equal(
                serial_trace.src_addrs, parallel_trace.src_addrs
            )

    def test_window_outside_horizon_rejected(self, fleet, shape):
        with pytest.raises(ValueError):
            rack_ingress_traces(fleet, shape, 0.0, HORIZON_S + 100.0, workers=1)

    def test_mismatched_fleet_rejected(self, fleet):
        wrong = build_topology(8, 2, per_server_pps=1.0, per_server_bps=1.0)
        with pytest.raises(ValueError):
            rack_ingress_traces(fleet, wrong, *WINDOW, workers=1)


class TestRunHops:
    def test_traversal_order_and_conservation(self, fleet, envelope, ingress):
        topology = provision_from_envelope(
            envelope,
            n_servers=N_SERVERS,
            n_racks=N_RACKS,
            rack_oversubscription=0.5,
            core_oversubscription=0.7,
            uplink_oversubscription=2.0,
        )
        result = run_hops(topology, ingress, *WINDOW, seed=fleet.seed)
        tiers = [report.tier for report in result.hops]
        assert tiers == ["rack"] * N_RACKS + ["core", "uplink"]
        # every hop's offered load is exactly its upstream's forwarded
        rack_forwarded = sum(r.forwarded for r in result.tier("rack"))
        assert result.hop("core").offered == rack_forwarded
        assert result.uplink.offered == result.hop("core").forwarded
        assert result.ingress_packets == sum(len(t) for t in ingress)
        assert 0.0 <= result.end_to_end_loss_rate <= 1.0

    def test_per_hop_series_account_for_drops(self, fleet, envelope, ingress):
        topology = provision_from_envelope(
            envelope,
            n_servers=N_SERVERS,
            n_racks=N_RACKS,
            uplink_oversubscription=4.0,
        )
        result = run_hops(topology, ingress, *WINDOW, seed=fleet.seed)
        uplink = result.uplink
        assert uplink.dropped > 0
        assert float(uplink.loss_series().sum()) == uplink.dropped
        assert float(uplink.series.in_counts.sum()) == uplink.offered
        assert uplink.byte_loss_rate > 0.0

    def test_keep_delivered(self, fleet, envelope, ingress):
        topology = provision_from_envelope(
            envelope, n_servers=N_SERVERS, n_racks=N_RACKS
        )
        result = run_hops(
            topology, ingress, *WINDOW, seed=fleet.seed, keep_delivered=True
        )
        assert result.delivered is not None
        assert len(result.delivered) == result.delivered_packets
        assert np.all(np.diff(result.delivered.timestamps) >= 0)

    def test_staged_fabric_equals_full_run(self, fleet, envelope, ingress):
        """run_fabric + finish_uplink is exactly run_hops (sweep fast path)."""
        topology = provision_from_envelope(
            envelope,
            n_servers=N_SERVERS,
            n_racks=N_RACKS,
            uplink_oversubscription=3.0,
        )
        full = run_hops(topology, ingress, *WINDOW, seed=fleet.seed)
        fabric = run_fabric(topology, ingress, *WINDOW, seed=fleet.seed)
        staged = finish_uplink(topology, fabric)
        for full_hop, staged_hop in zip(full.hops, staged.hops):
            assert full_hop.offered == staged_hop.offered
            assert full_hop.forwarded == staged_hop.forwarded
            assert full_hop.dropped == staged_hop.dropped
            assert full_hop.mean_delay_s == staged_hop.mean_delay_s
            assert np.array_equal(
                full_hop.series.in_counts, staged_hop.series.in_counts
            )

    def test_wrong_ingress_count_rejected(self, fleet, envelope, ingress):
        topology = provision_from_envelope(
            envelope, n_servers=N_SERVERS, n_racks=N_RACKS
        )
        with pytest.raises(ValueError):
            run_hops(topology, ingress[:1], *WINDOW, seed=fleet.seed)

    def test_facility_pipeline_caches_ingress(self, fleet, envelope):
        topology = provision_from_envelope(
            envelope, n_servers=N_SERVERS, n_racks=N_RACKS
        )
        pipeline = FacilityPipeline(fleet, topology)
        first = pipeline.ingress(*WINDOW, workers=1)
        assert pipeline.ingress(*WINDOW, workers=1) is first
        result = pipeline.run(*WINDOW, workers=1)
        assert result.ingress_packets == sum(len(t) for t in first)
        pipeline.clear_caches()
        assert pipeline.ingress(*WINDOW, workers=1) is not first


class TestReports:
    def test_sweep_monotone_and_saturates_uplink(self, fleet, envelope, ingress):
        sweep = sweep_uplink_oversubscription(
            fleet,
            ingress,
            envelope,
            *WINDOW,
            ratios=(0.8, 2.0, 4.0),
            n_racks=N_RACKS,
            rack_oversubscription=0.5,
            core_oversubscription=0.7,
        )
        assert np.all(np.diff(sweep.uplink_loss) >= 0.0)
        assert sweep.uplink_loss[0] == 0.0
        assert sweep.uplink_loss[-1] > 0.0
        assert sweep.saturating_tier() == TIER_UPLINK
        assert sweep.first_dropping[0] is None
        assert sweep.first_dropping[-1] == TIER_UPLINK
        rendered = sweep.render()
        assert "uplink" in rendered and "0.80" in rendered

    def test_first_dropping_tier_none_with_headroom(self, fleet, envelope, ingress):
        topology = provision_from_envelope(
            envelope,
            n_servers=N_SERVERS,
            n_racks=N_RACKS,
            rack_oversubscription=0.5,
            core_oversubscription=0.5,
            uplink_oversubscription=0.5,
        )
        result = run_hops(topology, ingress, *WINDOW, seed=fleet.seed)
        assert first_dropping_tier(result) is None

    def test_latency_budget_decomposes(self, fleet, envelope, ingress):
        topology = provision_from_envelope(
            envelope,
            n_servers=N_SERVERS,
            n_racks=N_RACKS,
            uplink_oversubscription=4.0,
        )
        result = run_hops(topology, ingress, *WINDOW, seed=fleet.seed)
        budget = latency_budget(result)
        assert set(budget.tier_mean_s) == set(TIER_ORDER)
        assert budget.total_mean_s == pytest.approx(
            sum(budget.tier_mean_s.values())
        )
        assert budget.total_mean_s > 0.0
        assert budget.dominant_tier == TIER_UPLINK  # the choked stage

    def test_envelope_reads_offered_load(self, ingress, envelope):
        packets = sum(len(trace) for trace in ingress)
        assert envelope.mean_pps == pytest.approx(
            packets / (WINDOW[1] - WINDOW[0]), rel=0.05
        )
        assert envelope.peak_pps >= envelope.mean_pps
        assert envelope.peak_bandwidth_bps > 0.0
