"""Unit tests for the population behaviour analysis."""

import pytest

from repro.core.population_analysis import PopulationAnalysis
from repro.gameserver.config import quick_test_profile
from repro.gameserver.population import PopulationResult, simulate_population


@pytest.fixture(scope="module")
def analysis(quick_population):
    return PopulationAnalysis.from_population(quick_population)


class TestPopulationAnalysis:
    def test_durations_heavy_tailed(self, analysis):
        # sessions are drawn lognormal, the fit must recover that
        assert analysis.duration_is_heavy_tailed()

    def test_session_means_consistent(self, analysis, quick_population):
        assert analysis.mean_session_s == pytest.approx(
            quick_population.mean_session_duration(), rel=0.01
        )
        assert analysis.median_session_s > 0

    def test_occupancy_fields(self, analysis, quick_profile):
        assert 0.0 < analysis.occupancy_mean <= quick_profile.max_players
        assert 0.0 < analysis.occupancy_utilisation <= 1.0

    def test_saturated_server(self, quick_population):
        analysis = PopulationAnalysis.from_population(quick_population)
        # the quick profile's attempt rate keeps the 8-slot server busy
        assert analysis.population_is_saturated(threshold=0.5)

    def test_describe(self, analysis):
        text = analysis.describe()
        assert "sessions" in text
        assert "occupancy" in text

    def test_short_horizon_diurnal_neutral(self, analysis):
        # a 10-minute horizon cannot measure diurnal structure
        assert analysis.diurnal_peak_to_trough == 1.0

    def test_week_scale_diurnal_detected(self):
        from repro.gameserver.config import olygamer_week

        population = simulate_population(
            olygamer_week().replace(duration=3 * 86400.0, outages=()), seed=2
        )
        analysis = PopulationAnalysis.from_population(
            population, players_bin_s=300.0
        )
        assert analysis.diurnal_peak_to_trough > 1.2
        assert analysis.arrival_burstiness > 1.0  # modulated, super-Poisson

    def test_empty_population_rejected(self):
        profile = quick_test_profile(duration=30.0).replace(attempt_rate=1e-9)
        population = simulate_population(profile, seed=1)
        if population.sessions:
            pytest.skip("seed produced a session even at tiny rate")
        with pytest.raises(ValueError):
            PopulationAnalysis.from_population(population)
