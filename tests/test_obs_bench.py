"""Tests for the perf-trajectory recorder (repro.obs.bench)."""

import json

from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    append_bench_record,
    collect_perf_record,
    emit_bench_record,
    load_trajectory,
)


class TestAppendBenchRecord:
    def test_creates_then_appends(self, tmp_path):
        path = tmp_path / "BENCH_obs_test.json"
        append_bench_record(path, {"kernel_pps": 1.0})
        append_bench_record(path, {"kernel_pps": 2.0})
        trajectory = load_trajectory(path)
        assert trajectory["schema"] == BENCH_SCHEMA_VERSION
        assert [r["kernel_pps"] for r in trajectory["records"]] == [1.0, 2.0]

    def test_corrupt_file_restarts_cleanly(self, tmp_path):
        path = tmp_path / "BENCH_obs_test.json"
        path.write_text("{not json", encoding="utf-8")
        append_bench_record(path, {"kernel_pps": 3.0})
        assert len(load_trajectory(path)["records"]) == 1

    def test_file_ends_with_newline(self, tmp_path):
        # append-only files that CI diffs/uploads should be POSIX-clean
        path = tmp_path / "BENCH_obs_test.json"
        append_bench_record(path, {})
        assert path.read_text(encoding="utf-8").endswith("\n")


class TestCollectPerfRecord:
    def test_record_has_throughput_and_provenance(self):
        record = collect_perf_record()
        assert record["kernel_pps"] > 0
        assert 0.0 <= record["cache_hit_rate_warm"] <= 1.0
        assert record["cache_hit_rate_warm"] == 1.0  # warm pass: all hits
        assert record["matchmaking_players_per_s"] > 0
        assert record["matchmaking_columnar_players_per_s"] > 0
        for key in ("git_rev", "repro_version", "kernel_version", "python"):
            assert record[key]
        json.dumps(record)  # the record itself must be JSON-safe

    def test_emit_writes_named_file(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("BENCH_RUNNER", "unit")
        path = emit_bench_record()
        assert path.name == "BENCH_obs_unit.json"
        assert len(load_trajectory(path)["records"]) == 1
