"""Tests for the perf-trajectory recorder (repro.obs.bench)."""

import json

from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    MAX_BENCH_RECORDS,
    append_bench_record,
    collect_perf_record,
    compact_records,
    emit_bench_record,
    load_trajectory,
)


class TestAppendBenchRecord:
    def test_creates_then_appends(self, tmp_path):
        path = tmp_path / "BENCH_obs_test.json"
        append_bench_record(path, {"kernel_pps": 1.0})
        append_bench_record(path, {"kernel_pps": 2.0})
        trajectory = load_trajectory(path)
        assert trajectory["schema"] == BENCH_SCHEMA_VERSION
        assert [r["kernel_pps"] for r in trajectory["records"]] == [1.0, 2.0]

    def test_corrupt_file_restarts_cleanly(self, tmp_path):
        path = tmp_path / "BENCH_obs_test.json"
        path.write_text("{not json", encoding="utf-8")
        append_bench_record(path, {"kernel_pps": 3.0})
        assert len(load_trajectory(path)["records"]) == 1

    def test_file_ends_with_newline(self, tmp_path):
        # append-only files that CI diffs/uploads should be POSIX-clean
        path = tmp_path / "BENCH_obs_test.json"
        append_bench_record(path, {})
        assert path.read_text(encoding="utf-8").endswith("\n")

    def test_same_rev_keeps_only_the_latest(self, tmp_path):
        # re-running benchmarks at one revision must not stack duplicate
        # trajectory points — only the last run per rev is the signal
        path = tmp_path / "BENCH_obs_test.json"
        append_bench_record(path, {"git_rev": "aaa", "kernel_pps": 1.0})
        append_bench_record(path, {"git_rev": "aaa", "kernel_pps": 2.0})
        append_bench_record(path, {"git_rev": "bbb", "kernel_pps": 3.0})
        records = load_trajectory(path)["records"]
        assert [(r["git_rev"], r["kernel_pps"]) for r in records] == [
            ("aaa", 2.0),
            ("bbb", 3.0),
        ]

    def test_records_without_rev_are_never_collapsed(self, tmp_path):
        path = tmp_path / "BENCH_obs_test.json"
        append_bench_record(path, {"kernel_pps": 1.0})
        append_bench_record(path, {"kernel_pps": 2.0})
        assert len(load_trajectory(path)["records"]) == 2


class TestCompactRecords:
    def test_caps_at_newest_max_records(self):
        records = [
            {"git_rev": f"rev{i}", "kernel_pps": float(i)}
            for i in range(MAX_BENCH_RECORDS + 25)
        ]
        compacted = compact_records(records)
        assert len(compacted) == MAX_BENCH_RECORDS
        assert compacted[-1] is records[-1]  # newest kept
        assert compacted[0]["git_rev"] == "rev25"  # oldest dropped

    def test_dedupe_preserves_order(self):
        records = [
            {"git_rev": "a", "n": 1},
            {"git_rev": "b", "n": 2},
            {"git_rev": "a", "n": 3},
            {"n": 4},  # no rev: always kept
        ]
        compacted = compact_records(records)
        assert compacted == [
            {"git_rev": "b", "n": 2},
            {"git_rev": "a", "n": 3},
            {"n": 4},
        ]

    def test_empty_is_empty(self):
        assert compact_records([]) == []


class TestCollectPerfRecord:
    def test_record_has_throughput_and_provenance(self):
        record = collect_perf_record()
        assert record["kernel_pps"] > 0
        assert 0.0 <= record["cache_hit_rate_warm"] <= 1.0
        assert record["cache_hit_rate_warm"] == 1.0  # warm pass: all hits
        assert record["matchmaking_players_per_s"] > 0
        assert record["matchmaking_columnar_players_per_s"] > 0
        for key in ("git_rev", "repro_version", "kernel_version", "python"):
            assert record[key]
        json.dumps(record)  # the record itself must be JSON-safe

    def test_emit_writes_named_file(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("BENCH_RUNNER", "unit")
        path = emit_bench_record()
        assert path.name == "BENCH_obs_unit.json"
        assert len(load_trajectory(path)["records"]) == 1
