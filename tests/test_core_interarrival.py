"""Unit tests for interarrival analysis."""

import numpy as np
import pytest

from repro.core.interarrival import InterarrivalAnalysis
from repro.net.addresses import IPv4Address
from repro.trace.packet import Direction
from repro.trace.trace import Trace, TraceBuilder


@pytest.fixture(scope="module")
def analysis(quick_trace, quick_profile):
    window = quick_trace.time_slice(10.0, 110.0)
    return InterarrivalAnalysis.from_trace(
        window, tick_interval=quick_profile.tick_interval
    )


class TestStructure:
    def test_outbound_tick_quantised(self, analysis):
        assert analysis.tick_quantisation > 0.6

    def test_client_intervals_near_clamp(self, analysis, quick_profile):
        assert analysis.flow_count > 0
        nominal = quick_profile.client_update_interval
        assert analysis.modal_client_interval() == pytest.approx(nominal, rel=0.3)
        assert analysis.client_intervals_clamped(nominal=nominal) > 0.5

    def test_aggregate_summaries_populated(self, analysis):
        assert analysis.aggregate_in.count > 100
        assert analysis.aggregate_out.count > 100
        assert analysis.aggregate_in.mean > 0

    def test_classifier_accepts_game_traffic(self, analysis):
        assert analysis.looks_like_game_traffic()

    def test_classifier_rejects_poisson_traffic(self):
        rng = np.random.default_rng(3)
        server = IPv4Address("10.0.0.2")
        builder = TraceBuilder(server_address=server)
        t_in = np.cumsum(rng.exponential(1 / 300.0, 20000))
        t_out = np.cumsum(rng.exponential(1 / 200.0, 12000))
        for t in t_in:
            builder.add(float(t), Direction.IN, 77, server.value, 5555, 80, 500)
        for t in t_out:
            builder.add(float(t), Direction.OUT, server.value, 77, 80, 5555, 1200)
        analysis = InterarrivalAnalysis.from_trace(builder.build())
        assert not analysis.looks_like_game_traffic()


class TestValidation:
    def test_empty_directions_rejected(self, quick_trace):
        with pytest.raises(ValueError):
            InterarrivalAnalysis.from_trace(quick_trace.inbound())

    def test_bad_tick_rejected(self, quick_trace):
        with pytest.raises(ValueError):
            InterarrivalAnalysis.from_trace(quick_trace, tick_interval=0.0)

    def test_no_qualifying_flows(self, quick_trace):
        window = quick_trace.time_slice(10.0, 110.0)
        analysis = InterarrivalAnalysis.from_trace(
            window, min_flow_packets=10**9
        )
        assert analysis.flow_count == 0
        with pytest.raises(ValueError):
            analysis.modal_client_interval()
        assert not analysis.looks_like_game_traffic()
