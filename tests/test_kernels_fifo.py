"""Parity suite: the vectorised FIFO fast path vs the scalar kernel.

:func:`repro.kernels.fifo_forward` dispatches plain single-class
traversals to a numpy idle-period block decomposition whose contract is
*bit-identical* fates and departures — not approximately equal.  Every
test here compares against :func:`repro.kernels.fifo._scalar_fifo` (the
authoritative per-packet loop) with ``np.array_equal``, no tolerances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import FreezePolicy, KernelResult, fifo_forward
from repro.kernels.fifo import _LONG_SEGMENT, _scalar_fifo


def scalar_reference(t, s, queue):
    """Run the authoritative scalar loop on a plain single-class stream."""
    n = int(np.asarray(t).size)
    fates = np.ones(n, dtype=np.int8)
    departures = np.full(n, np.nan)
    windows = _scalar_fifo(
        np.asarray(t, dtype=np.float64),
        np.asarray(s, dtype=np.float64),
        None,
        queue,
        1,
        (),
        None,
        fates,
        departures,
    )
    assert windows == []
    return fates, departures


def assert_bit_identical(t, s, queue):
    fates, departures = scalar_reference(t, s, queue)
    result = fifo_forward(t, s, primary_queue=queue)
    np.testing.assert_array_equal(result.fates, fates)
    assert np.array_equal(result.departures, departures, equal_nan=True)
    return result


# ----------------------------------------------------------------------
# seeded randomized stream families
# ----------------------------------------------------------------------
def poisson_stream(rng, n, utilization):
    t = np.cumsum(rng.exponential(1.0, n))
    s = rng.uniform(0.5, 1.5, n) * utilization
    return t, s


def bursty_stream(rng, n, burst=16):
    """Clusters of simultaneous arrivals separated by idle gaps."""
    n_bursts = max(n // burst, 1)
    centers = np.cumsum(rng.exponential(burst * 2.0, n_bursts))
    t = np.sort(np.repeat(centers, burst)[:n])
    s = rng.exponential(1.0, n)
    return t, s


def ties_stream(rng, n):
    """Sorted integer timestamps with heavy ties and zero services."""
    t = np.sort(rng.integers(0, max(n // 4, 1), n).astype(np.float64))
    s = rng.choice([0.0, 0.1, 2.0], size=n)
    return t, s


class TestRandomizedParity:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("queue", [1, 2, 8, 64])
    def test_poisson_streams(self, seed, queue):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 4000))
        t, s = poisson_stream(rng, n, utilization=float(rng.choice([0.5, 0.9, 1.2])))
        assert_bit_identical(t, s, queue)

    @pytest.mark.parametrize("seed", [10, 11, 12])
    @pytest.mark.parametrize("queue", [1, 4, 32])
    def test_bursty_streams(self, seed, queue):
        rng = np.random.default_rng(seed)
        t, s = bursty_stream(rng, int(rng.integers(64, 3000)))
        assert_bit_identical(t, s, queue)

    @pytest.mark.parametrize("seed", [20, 21, 22])
    @pytest.mark.parametrize("queue", [1, 3, 16])
    def test_sorted_with_ties_and_zero_services(self, seed, queue):
        rng = np.random.default_rng(seed)
        t, s = ties_stream(rng, int(rng.integers(16, 2000)))
        assert_bit_identical(t, s, queue)

    @pytest.mark.parametrize("queue", [1, 8, 49, 50, 51])
    def test_all_drop_simultaneous_burst(self, queue):
        # 50 arrivals at t=0 against long services: exactly `queue`
        # admitted, the rest tail-dropped
        t = np.zeros(50)
        s = np.full(50, 1.0)
        result = assert_bit_identical(t, s, queue)
        assert int((result.fates == 1).sum()) == min(queue, 50)

    def test_buffer_of_one(self):
        # queue=1: any packet arriving strictly before the previous
        # departure is dropped
        rng = np.random.default_rng(33)
        t, s = poisson_stream(rng, 2500, utilization=0.8)
        result = assert_bit_identical(t, s, 1)
        assert result.fates.min() == 0  # some drops must occur

    def test_empty_stream(self):
        result = fifo_forward(np.empty(0), np.empty(0), primary_queue=4)
        assert result.fates.size == 0
        assert result.departures.size == 0
        assert result.freeze_windows == []

    def test_long_busy_periods_cross_cumsum_threshold(self):
        # one sustained busy period much longer than _LONG_SEGMENT takes
        # the per-segment cumsum branch; parity must still be exact
        rng = np.random.default_rng(44)
        n = 8 * _LONG_SEGMENT
        t = np.cumsum(rng.exponential(1.0, n))
        s = np.full(n, 0.999)
        result = assert_bit_identical(t, s, 10_000)
        assert np.all(result.fates == 1)

    def test_mixed_short_and_long_busy_periods(self):
        rng = np.random.default_rng(55)
        pieces_t, pieces_s = [], []
        clock = 0.0
        for k in range(30):
            n = int(rng.integers(2, 4 * _LONG_SEGMENT if k % 7 == 0 else 20))
            t = clock + np.cumsum(rng.exponential(1.0, n))
            pieces_t.append(t)
            pieces_s.append(rng.uniform(0.2, 1.4, n))
            clock = float(t[-1]) + 50.0  # guaranteed drain between pieces
        t = np.concatenate(pieces_t)
        s = np.concatenate(pieces_s)
        for queue in (1, 7, 256):
            assert_bit_identical(t, s, queue)


class TestDispatch:
    def test_fast_path_taken_for_plain_streams(self, monkeypatch):
        import repro.kernels.fifo as fifo_module

        calls = []
        original = fifo_module._vectorized_fifo

        def spy(*args, **kwargs):
            calls.append(True)
            return original(*args, **kwargs)

        monkeypatch.setattr(fifo_module, "_vectorized_fifo", spy)
        t = np.arange(100, dtype=np.float64)
        s = np.full(100, 0.5)
        fifo_module.fifo_forward(t, s, primary_queue=4)
        assert calls  # plain single-class stream dispatched to the fast path

    def test_scalar_for_masked_blackout_or_freeze(self, monkeypatch):
        import repro.kernels.fifo as fifo_module

        def explode(*args, **kwargs):  # fast path must not be touched
            raise AssertionError("vectorized path used")

        monkeypatch.setattr(fifo_module, "_vectorized_fifo", explode)
        t = np.arange(50, dtype=np.float64)
        s = np.full(50, 0.1)
        mask = np.arange(50) % 2 == 0
        fifo_module.fifo_forward(t, s, primary_mask=mask, primary_queue=4)
        fifo_module.fifo_forward(t, s, primary_queue=4, blackouts=[(1.0, 2.0)])
        fifo_module.fifo_forward(
            t,
            s,
            primary_queue=4,
            freeze=FreezePolicy(threshold=1, window=1.0, duration=1.0, lag=0.0),
        )

    def test_scalar_fallback_for_unsorted_or_negative_service(self):
        # the guards must reject streams the fast path cannot segment;
        # results still come from the authoritative loop
        t = np.array([0.0, 2.0, 1.0, 3.0])
        s = np.full(4, 0.5)
        result = fifo_forward(t, s, primary_queue=2)
        assert isinstance(result, KernelResult)
        t2 = np.arange(4, dtype=np.float64)
        s2 = np.array([0.5, -0.5, 0.5, 0.5])
        result2 = fifo_forward(t2, s2, primary_queue=2)
        assert isinstance(result2, KernelResult)

    def test_numpy_cumsum_is_sequential(self):
        # the fast path's exactness relies on np.cumsum performing the
        # scalar loop's left-to-right additions; pin that here so a
        # numpy behaviour change fails loudly instead of as silent drift
        rng = np.random.default_rng(99)
        values = rng.uniform(0.0, 1e-3, 4096)
        acc = 0.0
        expected = np.empty(values.size)
        for i, value in enumerate(values):
            acc = acc + float(value)
            expected[i] = acc
        np.testing.assert_array_equal(np.cumsum(values), expected)


class TestCompatibilityExports:
    def test_hops_reexports_kernel_names(self):
        from repro.facilitynet import hops
        from repro.kernels import fifo as kernel_fifo
        from repro.kernels import taildrop as kernel_taildrop

        assert hops.fifo_forward is kernel_fifo.fifo_forward
        assert hops.FreezePolicy is kernel_fifo.FreezePolicy
        assert hops.KernelResult is kernel_fifo.KernelResult
        assert hops.tail_drop_link is kernel_taildrop.tail_drop_link
        assert hops._scalar_tail_drop is kernel_taildrop._scalar_tail_drop

    def test_package_namespace(self):
        import repro.kernels as kernels

        assert isinstance(kernels.KERNEL_VERSION, str)
        assert callable(kernels.fifo_forward)
        assert callable(kernels.tail_drop_link)

    def test_kernels_package_is_numpy_only(self):
        # the kernel layer must stay import-cycle-proof: no repro
        # dependencies beyond numpy
        import subprocess
        import sys

        import os

        src = os.path.abspath(
            os.path.join(os.path.dirname(__file__), os.pardir, "src")
        )
        code = (
            "import sys; import repro.kernels; "
            "bad = [m for m in sys.modules "
            "if m.startswith('repro.') and not m.startswith('repro.kernels')]; "
            "sys.exit(1 if bad else 0)"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, env=env
        )
        assert proc.returncode == 0, proc.stderr
