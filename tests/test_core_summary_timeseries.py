"""Unit tests for trace summaries and rate time-series extraction."""

import numpy as np
import pytest

from repro.core.summary import GeneralTraceInfo, NetworkUsage
from repro.core.timeseries import interval_counts, packet_load_series
from repro.trace.packet import Direction


class TestGeneralTraceInfo:
    def test_from_population(self, quick_population):
        info = GeneralTraceInfo.from_population(quick_population)
        assert info.established_connections == quick_population.established_count
        assert info.attempted_connections == quick_population.attempted_count
        assert info.maps_played == quick_population.maps_played
        assert info.mean_session_minutes == pytest.approx(
            quick_population.mean_session_duration() / 60.0
        )


class TestNetworkUsage:
    def test_totals_and_rates(self, synthetic_trace):
        usage = NetworkUsage.from_trace(synthetic_trace, duration=1.0)
        assert usage.total_packets == 15
        assert usage.packets_in == 10
        assert usage.packets_out == 5
        assert usage.app_bytes == 10 * 40 + 5 * 130
        assert usage.mean_packet_load == pytest.approx(15.0)

    def test_mean_sizes(self, synthetic_trace):
        usage = NetworkUsage.from_trace(synthetic_trace, duration=1.0)
        assert usage.mean_packet_size_in == pytest.approx(40.0)
        assert usage.mean_packet_size_out == pytest.approx(130.0)
        assert usage.mean_packet_size == pytest.approx((400 + 650) / 15)

    def test_wire_vs_app_gap(self, synthetic_trace):
        usage = NetworkUsage.from_trace(synthetic_trace, duration=1.0)
        per_packet = synthetic_trace.overhead.per_packet
        assert usage.wire_bytes - usage.app_bytes == 15 * per_packet

    def test_bandwidth_kbps(self, synthetic_trace):
        usage = NetworkUsage.from_trace(synthetic_trace, duration=1.0)
        expected = 8.0 * usage.wire_bytes / 1000.0
        assert usage.mean_bandwidth_kbps == pytest.approx(expected)

    def test_extrapolation(self, synthetic_trace):
        usage = NetworkUsage.from_trace(synthetic_trace, duration=1.0)
        assert usage.extrapolate_packets(100.0) == pytest.approx(1500.0)
        assert usage.extrapolate_wire_gigabytes(1e9 / usage.wire_bytes) == (
            pytest.approx(1.0)
        )

    def test_invalid_inputs(self, synthetic_trace):
        usage = NetworkUsage.from_trace(synthetic_trace, duration=1.0)
        with pytest.raises(ValueError):
            usage.extrapolate_packets(0.0)
        with pytest.raises(ValueError):
            usage.extrapolate_wire_gigabytes(-1.0)

    def test_zero_window_rejected(self, synthetic_trace):
        single = synthetic_trace.time_slice(0.0, 0.01)
        with pytest.raises(ValueError):
            NetworkUsage.from_trace(single)


class TestPacketLoadSeries:
    def test_total_series(self, synthetic_trace):
        series = packet_load_series(synthetic_trace, 0.1)
        assert series.label == "total"
        assert series.packets_per_second.sum() * 0.1 == pytest.approx(15.0)

    def test_directional_series(self, synthetic_trace):
        inbound = packet_load_series(synthetic_trace, 0.5, direction=Direction.IN)
        outbound = packet_load_series(synthetic_trace, 0.5, direction=Direction.OUT)
        assert inbound.label == "in"
        assert outbound.label == "out"
        total_in = inbound.packets_per_second.sum() * 0.5
        assert total_in == pytest.approx(10.0)

    def test_bandwidth_uses_wire_bytes(self, synthetic_trace):
        series = packet_load_series(synthetic_trace, 1.0)
        total_bits = series.kilobits_per_second.sum() * 1000.0
        assert total_bits == pytest.approx(8.0 * synthetic_trace.total_wire_bytes)

    def test_mean_helpers(self, synthetic_trace):
        series = packet_load_series(synthetic_trace, 0.1)
        assert series.mean_pps() == pytest.approx(
            float(series.packets_per_second.mean())
        )
        assert series.mean_kbps() > 0

    def test_explicit_window(self, synthetic_trace):
        series = packet_load_series(
            synthetic_trace, 0.1, start_time=0.0, end_time=2.0
        )
        assert len(series.series) == 20


class TestIntervalCounts:
    def test_first_n_intervals(self, synthetic_trace):
        rates = interval_counts(synthetic_trace, 0.1, 5, start_time=0.0)
        assert rates.size == 5
        # bin 0 holds t=0.0 (in) and t=0.05 (out)
        assert rates[0] == pytest.approx(20.0)

    def test_insufficient_window_raises(self, synthetic_trace):
        with pytest.raises(ValueError):
            interval_counts(synthetic_trace, 1.0, 500, start_time=0.0)

    def test_direction_filter(self, synthetic_trace):
        rates = interval_counts(
            synthetic_trace, 0.1, 5, direction=Direction.OUT, start_time=0.0
        )
        assert rates[0] == pytest.approx(10.0)  # only the t=0.05 packet
