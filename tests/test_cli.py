"""Tests for the repro-simulate CLI and the repro-experiments runner."""

import pytest

from repro.cli import main
from repro.experiments import runner
from repro.net.addresses import IPv4Address
from repro.trace.format import load_trace
from repro.trace.pcap import read_pcap


class TestSimulateCli:
    def test_pcap_output(self, tmp_path, capsys):
        out = str(tmp_path / "window.pcap")
        code = main(["--start", "0", "--end", "60", "--slots", "6",
                     "--format", "pcap", "-o", out])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        trace = read_pcap(out, server_address=IPv4Address("128.223.40.15"))
        assert len(trace) > 100

    def test_npz_output_roundtrips(self, tmp_path, capsys):
        out = str(tmp_path / "window.npz")
        code = main(["--end", "60", "--slots", "6", "--format", "npz",
                     "-o", out])
        assert code == 0
        trace = load_trace(out)
        assert len(trace) > 100
        assert trace.server_address == IPv4Address("128.223.40.15")

    def test_log_written(self, tmp_path):
        out = str(tmp_path / "w.npz")
        log = str(tmp_path / "server.log")
        code = main(["--end", "60", "--slots", "4", "--format", "npz",
                     "-o", out, "--log", log])
        assert code == 0
        from repro.gameserver.gamelog import parse_log

        with open(log) as handle:
            events = parse_log(handle)
        assert any(e.event == "map_start" for e in events)

    def test_bad_window_rejected(self, tmp_path, capsys):
        out = str(tmp_path / "x.pcap")
        assert main(["--start", "60", "--end", "30", "-o", out]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_slots_rejected(self, tmp_path, capsys):
        out = str(tmp_path / "x.pcap")
        assert main(["--end", "30", "--slots", "0", "-o", out]) == 2

    def test_end_beyond_week_rejected(self, tmp_path, capsys):
        out = str(tmp_path / "x.pcap")
        assert main(["--end", "99999999", "-o", out]) == 2


class TestExperimentsWorkersFlag:
    @pytest.mark.parametrize("value", ["0", "-1", "-8"])
    def test_non_positive_workers_is_a_clean_argparse_error(self, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--workers", value, "table1"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--workers" in err
        assert "must be >= 1" in err
        assert "Traceback" not in err

    def test_non_integer_workers_is_a_clean_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--workers", "two", "table1"])
        assert excinfo.value.code == 2
        assert "invalid" in capsys.readouterr().err


class TestExperimentsCacheDir:
    @staticmethod
    def _fake_experiment(tmp_path, monkeypatch):
        """Register a tiny sharded experiment that exercises the cache."""
        from dataclasses import dataclass

        from repro.core.report import ComparisonRow
        from repro.experiments.base import ExperimentOutput
        from repro.fleet.execution import shard_map

        @dataclass(frozen=True)
        class _Task:
            value: int

        def _evaluate(task):
            return task.value * task.value

        def run(seed: int = 0):
            results = shard_map(_evaluate, [_Task(i) for i in range(3)], workers=1)
            return ExperimentOutput(
                experiment_id="faketask",
                title="fake sharded probe",
                rows=[ComparisonRow("sum of squares", 5.0, float(sum(results)))],
            )

        monkeypatch.setitem(runner.REGISTRY, "faketask", run)
        monkeypatch.setitem(runner.DESCRIPTIONS, "faketask", "fake sharded probe")
        # _Task/_evaluate must stay importable for task_key fingerprinting
        return run

    def test_cache_dir_cold_then_warm(self, tmp_path, monkeypatch, capsys):
        self._fake_experiment(tmp_path, monkeypatch)
        cache_dir = str(tmp_path / "cache")

        code = runner.main(["faketask", "--cache-dir", cache_dir])
        assert code == 0
        cold = capsys.readouterr().out
        assert f"cache {cache_dir}: 0 hits, 3 misses, 3 stored" in cold

        code = runner.main(["faketask", "--cache-dir", cache_dir])
        assert code == 0
        warm = capsys.readouterr().out
        assert f"cache {cache_dir}: 3 hits, 0 misses, 0 stored" in warm
        # the reported measurement must not depend on cache warmth
        assert [line for line in cold.splitlines() if "sum of squares" in line] == [
            line for line in warm.splitlines() if "sum of squares" in line
        ]

    def test_cache_dir_default_is_reset_after_run(self, tmp_path, monkeypatch):
        from repro.fleet.cache import resolve_cache

        self._fake_experiment(tmp_path, monkeypatch)
        runner.main(["faketask", "--cache-dir", str(tmp_path / "cache")])
        assert resolve_cache(None) is None

    def test_no_cache_line_without_flag(self, tmp_path, monkeypatch, capsys):
        self._fake_experiment(tmp_path, monkeypatch)
        assert runner.main(["faketask"]) == 0
        assert "cache " not in capsys.readouterr().out


class TestExperimentsList:
    def test_list_prints_every_id_with_description(self, capsys):
        assert runner.main(["--list"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == len(runner.REGISTRY)
        listed = {}
        for line in lines:
            experiment_id, description = line.split(None, 1)
            listed[experiment_id] = description
        assert set(listed) == set(runner.REGISTRY)
        # descriptions are the experiments' one-line titles, not ids
        assert listed["facilitynet"] == runner.DESCRIPTIONS["facilitynet"]
        assert "oversubscription" in listed["facilitynet"]
        assert all(description.strip() for description in listed.values())

    def test_list_runs_nothing(self, capsys):
        # --list must exit before any experiment executes (fast path)
        assert runner.main(["--list", "table1"]) == 0
        out = capsys.readouterr().out
        assert "reproduced within tolerance" not in out
