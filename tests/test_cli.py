"""Tests for the repro-simulate CLI and the repro-experiments runner."""

from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments import runner
from repro.net.addresses import IPv4Address
from repro.trace.format import load_trace
from repro.trace.pcap import read_pcap


class TestSimulateCli:
    def test_pcap_output(self, tmp_path, capsys):
        out = str(tmp_path / "window.pcap")
        code = main(["--start", "0", "--end", "60", "--slots", "6",
                     "--format", "pcap", "-o", out])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        trace = read_pcap(out, server_address=IPv4Address("128.223.40.15"))
        assert len(trace) > 100

    def test_npz_output_roundtrips(self, tmp_path, capsys):
        out = str(tmp_path / "window.npz")
        code = main(["--end", "60", "--slots", "6", "--format", "npz",
                     "-o", out])
        assert code == 0
        trace = load_trace(out)
        assert len(trace) > 100
        assert trace.server_address == IPv4Address("128.223.40.15")

    def test_log_written(self, tmp_path):
        out = str(tmp_path / "w.npz")
        log = str(tmp_path / "server.log")
        code = main(["--end", "60", "--slots", "4", "--format", "npz",
                     "-o", out, "--log", log])
        assert code == 0
        from repro.gameserver.gamelog import parse_log

        with open(log) as handle:
            events = parse_log(handle)
        assert any(e.event == "map_start" for e in events)

    def test_bad_window_rejected(self, tmp_path, capsys):
        out = str(tmp_path / "x.pcap")
        assert main(["--start", "60", "--end", "30", "-o", out]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_slots_rejected(self, tmp_path, capsys):
        out = str(tmp_path / "x.pcap")
        assert main(["--end", "30", "--slots", "0", "-o", out]) == 2

    def test_end_beyond_week_rejected(self, tmp_path, capsys):
        out = str(tmp_path / "x.pcap")
        assert main(["--end", "99999999", "-o", out]) == 2


class TestExperimentsWorkersFlag:
    @pytest.mark.parametrize("value", ["0", "-1", "-8"])
    def test_non_positive_workers_is_a_clean_argparse_error(self, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--workers", value, "table1"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--workers" in err
        assert "must be >= 1" in err
        assert "Traceback" not in err

    def test_non_integer_workers_is_a_clean_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--workers", "two", "table1"])
        assert excinfo.value.code == 2
        assert "invalid" in capsys.readouterr().err


class TestExperimentsCacheDirValidation:
    def test_nonexistent_parent_is_a_clean_argparse_error(self, tmp_path, capsys):
        bogus = str(tmp_path / "missing" / "cache")
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--cache-dir", bogus, "table1"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--cache-dir" in err
        assert "does not exist" in err
        assert "Traceback" not in err

    def test_existing_file_rejected(self, tmp_path, capsys):
        not_a_dir = tmp_path / "entries.pkl"
        not_a_dir.write_bytes(b"x")
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--cache-dir", str(not_a_dir), "table1"])
        assert excinfo.value.code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_unwritable_path_rejected(self, tmp_path, monkeypatch, capsys):
        # os.access is the writability oracle (root sees everything as
        # writable, so the permission bit itself cannot be the fixture)
        target = tmp_path / "cache"
        target.mkdir()
        monkeypatch.setattr(
            runner.os, "access", lambda path, mode: False
        )
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--cache-dir", str(target), "table1"])
        assert excinfo.value.code == 2
        assert "not writable" in capsys.readouterr().err

    def test_unwritable_parent_rejected(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(runner.os, "access", lambda path, mode: False)
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--cache-dir", str(tmp_path / "cache"), "table1"])
        assert excinfo.value.code == 2
        assert "is not writable" in capsys.readouterr().err

    def test_creatable_path_accepted(self, tmp_path):
        # parent exists and is writable; the directory itself need not
        assert runner._cache_dir(str(tmp_path / "cache")) == str(
            tmp_path / "cache"
        )


class TestExperimentsMatchmakingFlags:
    def test_unknown_policy_is_a_clean_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--policy", "zergrush", "matchmaking"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--policy" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize("value", ["0", "-5"])
    def test_non_positive_pool_size_is_a_clean_argparse_error(self, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--pool-size", value, "matchmaking"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--pool-size" in err
        assert "must be >= 1" in err

    def test_policy_choices_come_from_the_registry(self, capsys):
        # --policy derives its choices from repro.matchmaking.POLICIES:
        # a registered policy is addressable without touching the runner
        from repro.matchmaking import POLICIES

        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--policy", "zergrush", "matchmaking"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        for name in POLICIES:
            assert name in err

    def test_unknown_rtt_profile_is_a_clean_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--rtt-profile", "atlantis", "matchmaking"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--rtt-profile" in err
        assert "uniform" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize("flag", ["--alpha", "--beta"])
    @pytest.mark.parametrize("value", ["-0.5", "-3"])
    def test_negative_weight_is_a_clean_argparse_error(self, flag, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main([flag, value, "matchmaking"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert flag in err
        assert "must be >= 0" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize("flag", ["--alpha", "--beta"])
    def test_non_numeric_weight_is_a_clean_argparse_error(self, flag, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main([flag, "plenty", "matchmaking"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid" in err

    @pytest.mark.parametrize("value", ["nan", "inf", "-inf"])
    def test_non_finite_weight_is_a_clean_argparse_error(self, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--alpha", value, "matchmaking"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--alpha" in err
        assert "Traceback" not in err

    def test_pool_size_below_capacity_is_a_clean_runtime_error(self, capsys):
        # feasibility depends on the seed-derived facility's slot count,
        # so this surfaces at run time — but cleanly, without a traceback
        code = runner.main(["--pool-size", "2", "matchmaking"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--pool-size" in err
        assert "must exceed" in err
        assert "Traceback" not in err

    def test_unknown_engine_is_a_clean_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--engine", "turbo", "matchmaking"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--engine" in err
        assert "Traceback" not in err

    def test_engine_choices_come_from_the_engine_registry(self, capsys):
        from repro.matchmaking import ENGINES

        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--engine", "turbo", "matchmaking"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        for name in ENGINES:
            assert name in err

    def test_engine_documented_in_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--engine" in out
        assert "columnar" in out

    def test_defaults_are_reset_after_run(self, monkeypatch):
        from repro.experiments import matchmaking

        calls = {}

        def fake_run(ids, seed=0):
            calls["policy"] = matchmaking._default_policy
            calls["pool_size"] = matchmaking._default_pool_size
            calls["rtt_profile"] = matchmaking._default_rtt_profile
            calls["alpha"] = matchmaking._default_alpha
            calls["beta"] = matchmaking._default_beta
            calls["engine"] = matchmaking._default_engine
            return []

        monkeypatch.setattr(runner, "run_experiments", fake_run)
        runner.main(
            [
                "--policy", "latency_aware", "--pool-size", "123",
                "--rtt-profile", "continental", "--alpha", "2.5",
                "--beta", "0.5", "--engine", "columnar", "matchmaking",
            ]
        )
        # installed for the run...
        assert calls == {
            "policy": "latency_aware",
            "pool_size": 123,
            "rtt_profile": "continental",
            "alpha": 2.5,
            "beta": 0.5,
            "engine": "columnar",
        }
        # ...and cleared afterwards
        assert matchmaking._default_policy is None
        assert matchmaking._default_pool_size is None
        assert matchmaking._default_rtt_profile is None
        assert matchmaking._default_alpha is None
        assert matchmaking._default_beta is None
        assert matchmaking._default_engine is None


class TestExperimentsChurnFlags:
    def test_unknown_scenario_is_a_clean_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--scenario", "tsunami", "churn"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--scenario" in err
        assert "Traceback" not in err

    def test_scenario_choices_come_from_the_registry(self, capsys):
        from repro.matchmaking import SCENARIOS

        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--scenario", "tsunami", "churn"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        for name in SCENARIOS:
            assert name in err

    @pytest.mark.parametrize(
        "flag", ["--qoe-duration-floor", "--qoe-balk-escalation"]
    )
    @pytest.mark.parametrize("value", ["0", "1.5", "-0.5"])
    def test_out_of_range_fraction_is_a_clean_argparse_error(
        self, flag, value, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            runner.main([flag, value, "churn"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert flag in err
        assert "must lie in (0, 1]" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize("value", ["0", "-10", "nan"])
    def test_bad_rtt_scale_is_a_clean_argparse_error(self, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--qoe-rtt-scale", value, "churn"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--qoe-rtt-scale" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize("value", ["-1", "nan", "inf"])
    def test_bad_rtt_good_is_a_clean_argparse_error(self, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--qoe-rtt-good", value, "churn"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--qoe-rtt-good" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize(
        "flag", ["--qoe-duration-floor", "--qoe-rtt-good", "--qoe-rtt-scale"]
    )
    def test_non_numeric_qoe_value_is_a_clean_argparse_error(
        self, flag, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            runner.main([flag, "plenty", "churn"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid" in err

    def test_churn_flags_documented_in_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--scenario" in out
        assert "--qoe-duration-floor" in out
        assert "--qoe-balk-escalation" in out

    def test_churn_defaults_are_reset_after_run(self, monkeypatch):
        from repro.experiments import churn

        calls = {}

        def fake_run(ids, seed=0):
            calls["scenario"] = churn._default_scenario
            calls["floor"] = churn._default_qoe_duration_floor
            calls["good"] = churn._default_qoe_rtt_good
            calls["scale"] = churn._default_qoe_rtt_scale
            calls["balk"] = churn._default_qoe_balk_escalation
            return []

        monkeypatch.setattr(runner, "run_experiments", fake_run)
        runner.main(
            [
                "--scenario", "patch_day", "--qoe-duration-floor", "0.5",
                "--qoe-rtt-good", "30", "--qoe-rtt-scale", "90",
                "--qoe-balk-escalation", "0.8", "churn",
            ]
        )
        assert calls == {
            "scenario": "patch_day",
            "floor": 0.5,
            "good": 30.0,
            "scale": 90.0,
            "balk": 0.8,
        }
        assert churn._default_scenario is None
        assert churn._default_qoe_duration_floor is None
        assert churn._default_qoe_rtt_good is None
        assert churn._default_qoe_rtt_scale is None
        assert churn._default_qoe_balk_escalation is None


class TestExperimentsCacheDir:
    @staticmethod
    def _fake_experiment(tmp_path, monkeypatch):
        """Register a tiny sharded experiment that exercises the cache."""
        from dataclasses import dataclass

        from repro.core.report import ComparisonRow
        from repro.experiments.base import ExperimentOutput
        from repro.fleet.execution import shard_map

        @dataclass(frozen=True)
        class _Task:
            value: int

        def _evaluate(task):
            return task.value * task.value

        def run(seed: int = 0):
            results = shard_map(_evaluate, [_Task(i) for i in range(3)], workers=1)
            return ExperimentOutput(
                experiment_id="faketask",
                title="fake sharded probe",
                rows=[ComparisonRow("sum of squares", 5.0, float(sum(results)))],
            )

        monkeypatch.setitem(runner.REGISTRY, "faketask", run)
        monkeypatch.setitem(runner.DESCRIPTIONS, "faketask", "fake sharded probe")
        # _Task/_evaluate must stay importable for task_key fingerprinting
        return run

    def test_cache_dir_cold_then_warm(self, tmp_path, monkeypatch, capsys):
        self._fake_experiment(tmp_path, monkeypatch)
        cache_dir = str(tmp_path / "cache")

        code = runner.main(["faketask", "--cache-dir", cache_dir])
        assert code == 0
        cold = capsys.readouterr().out
        assert f"cache {cache_dir}: 0 hits, 3 misses, 3 stored" in cold

        code = runner.main(["faketask", "--cache-dir", cache_dir])
        assert code == 0
        warm = capsys.readouterr().out
        assert f"cache {cache_dir}: 3 hits, 0 misses, 0 stored" in warm
        # the reported measurement must not depend on cache warmth
        assert [line for line in cold.splitlines() if "sum of squares" in line] == [
            line for line in warm.splitlines() if "sum of squares" in line
        ]

    def test_cache_dir_default_is_reset_after_run(self, tmp_path, monkeypatch):
        from repro.fleet.cache import resolve_cache

        self._fake_experiment(tmp_path, monkeypatch)
        runner.main(["faketask", "--cache-dir", str(tmp_path / "cache")])
        assert resolve_cache(None) is None

    def test_no_cache_line_without_flag(self, tmp_path, monkeypatch, capsys):
        self._fake_experiment(tmp_path, monkeypatch)
        assert runner.main(["faketask"]) == 0
        assert "cache " not in capsys.readouterr().out


class TestExperimentsList:
    def test_list_prints_every_id_with_description(self, capsys):
        assert runner.main(["--list"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == len(runner.REGISTRY)
        listed = {}
        for line in lines:
            experiment_id, description = line.split(None, 1)
            listed[experiment_id] = description
        assert set(listed) == set(runner.REGISTRY)
        # descriptions are the experiments' one-line titles, not ids
        assert listed["facilitynet"] == runner.DESCRIPTIONS["facilitynet"]
        assert "oversubscription" in listed["facilitynet"]
        assert all(description.strip() for description in listed.values())

    def test_list_runs_nothing(self, capsys):
        # --list must exit before any experiment executes (fast path)
        assert runner.main(["--list", "table1"]) == 0
        out = capsys.readouterr().out
        assert "reproduced within tolerance" not in out


class TestExperimentsTraceDirValidation:
    # --trace-dir shares _writable_directory with --cache-dir, so the
    # same misuse fails the same way: at argument parsing, exit code 2.
    def test_nonexistent_parent_is_a_clean_argparse_error(self, tmp_path, capsys):
        bogus = str(tmp_path / "missing" / "trace")
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--trace-dir", bogus, "table1"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--trace-dir" in err
        assert "does not exist" in err
        assert "Traceback" not in err

    def test_existing_file_rejected(self, tmp_path, capsys):
        not_a_dir = tmp_path / "manifest.json"
        not_a_dir.write_bytes(b"x")
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--trace-dir", str(not_a_dir), "table1"])
        assert excinfo.value.code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_unwritable_path_rejected(self, tmp_path, monkeypatch, capsys):
        target = tmp_path / "trace"
        target.mkdir()
        monkeypatch.setattr(runner.os, "access", lambda path, mode: False)
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--trace-dir", str(target), "table1"])
        assert excinfo.value.code == 2
        assert "not writable" in capsys.readouterr().err

    def test_unwritable_parent_rejected(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(runner.os, "access", lambda path, mode: False)
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["--trace-dir", str(tmp_path / "trace"), "table1"])
        assert excinfo.value.code == 2
        assert "is not writable" in capsys.readouterr().err

    def test_creatable_path_accepted(self, tmp_path):
        assert runner._trace_dir(str(tmp_path / "trace")) == str(
            tmp_path / "trace"
        )


class TestExperimentsTraceDir:
    def test_matchmaking_trace_produces_manifest_and_streams(
        self, tmp_path, capsys
    ):
        from repro.obs import current_session
        from repro.obs.export import load_manifest, read_jsonl

        trace_dir = tmp_path / "trace"
        code = runner.main(
            ["matchmaking", "--policy", "least_loaded",
             "--trace-dir", str(trace_dir)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"trace {trace_dir}: manifest at" in out

        manifest = load_manifest(trace_dir)
        assert manifest["seed"] == 0
        assert manifest["experiments"] == ["matchmaking"]
        assert manifest["config_fingerprint"]
        assert manifest["metrics"]["matchmaking.attempts"] > 0
        # the manifest inventories at least two streaming artifacts
        # beyond itself (per-epoch JSONL + occupancy arrays + spans)
        assert len(manifest["artifacts"]) >= 2
        for name in manifest["artifacts"]:
            assert (trace_dir / name).is_file()

        epochs = read_jsonl(trace_dir / "matchmaking_epochs.jsonl")
        assert epochs, "per-epoch stream must not be empty"
        assert epochs[0]["policy"] == "least_loaded"
        assert all(row["epoch"] == i for i, row in enumerate(epochs))
        # admissions streamed per epoch must sum to the run totals
        assert (
            sum(row["admitted"] for row in epochs)
            == manifest["metrics"]["matchmaking.admitted"]
        )
        spans = read_jsonl(trace_dir / "spans.jsonl")
        assert any(s["name"] == "matchmaking.run" for s in spans)
        assert all(s["wall_s"] >= 0 for s in spans)

    def test_session_is_closed_after_run(self, tmp_path):
        from repro.obs import current_session

        runner.main(
            ["table1", "--trace-dir", str(tmp_path / "trace")]
        )
        assert current_session() is None

    def test_no_trace_line_without_flag(self, capsys):
        assert runner.main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "manifest at" not in out
        assert "trace rollup" not in out

    def test_end_of_run_rollup_line(self, tmp_path, capsys):
        """--trace-dir prints the one-line rollup sourced from the
        finished session: wall time, peak RSS, spans, cache use."""
        import re

        code = runner.main(
            ["matchmaking", "--policy", "least_loaded",
             "--trace-dir", str(tmp_path / "trace")]
        )
        assert code == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.startswith("trace rollup:")]
        assert len(lines) == 1
        assert re.fullmatch(
            r"trace rollup: \d+\.\d\d s wall \| peak rss \d+\.\d MiB "
            r"\| \d+ spans \| \d+ heartbeats \| \d+ samples "
            r"\| cache unused",
            lines[0],
        ), lines[0]

    def test_sample_interval_requires_trace_dir(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["matchmaking", "--sample-interval", "0.5"])
        assert excinfo.value.code == 2
        assert "--sample-interval requires --trace-dir" in (
            capsys.readouterr().err
        )

    def test_sample_interval_must_be_positive(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(
                ["matchmaking", "--trace-dir", str(tmp_path / "t"),
                 "--sample-interval", "-1"]
            )
        assert excinfo.value.code == 2
        assert "must be > 0" in capsys.readouterr().err

    def test_sample_interval_streams_resources(self, tmp_path, capsys):
        from repro.obs.export import load_manifest, read_jsonl

        trace_dir = tmp_path / "trace"
        code = runner.main(
            ["matchmaking", "--policy", "least_loaded",
             "--trace-dir", str(trace_dir),
             "--sample-interval", "0.01"]
        )
        assert code == 0
        rows = read_jsonl(trace_dir / "resources.jsonl")
        assert rows, "sampler produced no rows"
        manifest = load_manifest(trace_dir)
        assert manifest["resource_samples"] == len(rows)
        assert manifest["heartbeats"] > 0

    def test_rollup_reports_cache_hits(self, tmp_path, capsys):
        import re

        code = runner.main(
            ["matchmaking", "--policy", "least_loaded",
             "--trace-dir", str(tmp_path / "t1"),
             "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 0
        cold = capsys.readouterr().out
        # cold run: some lookups miss (within-run reuse may still hit)
        assert re.search(r"\| cache \d+/\d+ hits", cold)
        assert "(100.0%)" not in cold

        code = runner.main(
            ["matchmaking", "--policy", "least_loaded",
             "--trace-dir", str(tmp_path / "t2"),
             "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 0
        warm = capsys.readouterr().out
        rollup = [l for l in warm.splitlines() if "trace rollup" in l][0]
        assert "(100.0%)" in rollup  # warm run: every lookup hits


class TestAnalyzeCli:
    """repro-analyze, driven over a real traced run."""

    @pytest.fixture(scope="class")
    def trace_dirs(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("analyze")
        for name, policy, seed in (
            ("a", "least_loaded", "0"),
            ("b", "latency_aware", "1"),
        ):
            code = runner.main(
                ["matchmaking", "--policy", policy, "--seed", seed,
                 "--trace-dir", str(root / name)]
            )
            assert code == 0
        return str(root / "a"), str(root / "b")

    def test_summary_self_validates(self, trace_dirs, capsys):
        from repro.cli import analyze_main

        assert analyze_main(["summary", trace_dirs[0]]) == 0
        out = capsys.readouterr().out
        assert "metric totals" in out
        assert "match the manifest" in out
        assert "MISMATCH" not in out

    def test_spans_rollup_and_critical_path(self, trace_dirs, capsys):
        from repro.cli import analyze_main

        assert analyze_main(["spans", trace_dirs[0]]) == 0
        out = capsys.readouterr().out
        assert "per-phase wall time" in out
        assert "critical path" in out
        assert "fleet.shard_map" in out

    def test_heatmap_and_frontier(self, trace_dirs, capsys):
        from repro.cli import analyze_main

        assert analyze_main(["heatmap", trace_dirs[0]]) == 0
        out = capsys.readouterr().out
        assert "occupancy × region × epoch" in out
        assert "occupancy–RTT frontier" in out
        assert "least_loaded" in out

    def test_heatmap_unknown_policy_rejected(self, trace_dirs, capsys):
        from repro.cli import analyze_main

        assert analyze_main(
            ["heatmap", trace_dirs[0], "--policy", "zergrush"]
        ) == 2
        assert "not traced" in capsys.readouterr().err

    def test_compare_two_runs(self, trace_dirs, capsys):
        from repro.cli import analyze_main

        assert analyze_main(["compare", *trace_dirs]) == 0
        out = capsys.readouterr().out
        assert "seed" in out
        assert "config_fingerprint" in out

    def test_compare_bench_soft_fails_with_annotation(
        self, trace_dirs, tmp_path, capsys
    ):
        import json

        from repro.cli import analyze_main

        bench = tmp_path / "BENCH_obs_test.json"
        bench.write_text(json.dumps({
            "records": [{"kernel_pps": v} for v in (100.0, 110.0, 40.0)]
        }))
        # a >20% regression is reported as a warning annotation, and
        # the exit code stays 0 — CI must not break on perf noise
        assert analyze_main(
            ["compare", trace_dirs[0], "--bench", str(bench)]
        ) == 0
        out = capsys.readouterr().out
        assert "::warning ::" in out
        assert "kernel_pps" in out

    def test_missing_trace_dir_is_a_clean_error(self, tmp_path, capsys):
        from repro.cli import analyze_main

        assert analyze_main(["summary", str(tmp_path / "absent")]) == 2
        err = capsys.readouterr().err
        assert "manifest.json" in err
        assert "Traceback" not in err

    def test_summary_surfaces_live_stream_counts(self, trace_dirs, capsys):
        from repro.cli import analyze_main

        assert analyze_main(["summary", trace_dirs[0]]) == 0
        out = capsys.readouterr().out
        assert "live streams:" in out
        assert "heartbeats" in out

    def test_watch_once_on_finished_run(self, trace_dirs, capsys):
        from repro.cli import analyze_main

        assert analyze_main(["watch", trace_dirs[0], "--once"]) == 0
        out = capsys.readouterr().out
        assert "(finished)" in out
        assert "matchmaking.columnar.epochs" in out
        assert "::warning" not in out

    def test_watch_once_strict_on_finished_run_is_clean(
        self, trace_dirs, capsys
    ):
        from repro.cli import analyze_main

        # finished runs never stall, whatever their timestamps' age
        assert analyze_main(
            ["watch", trace_dirs[0], "--once", "--strict"]
        ) == 0

    def test_watch_renders_midflight_progress_and_eta(
        self, tmp_path, capsys
    ):
        """Acceptance: one frame from a mid-flight dir (no manifest yet)
        shows the bar, counts and an ETA from the recent-window rate."""
        import json
        import time as time_mod

        from repro.cli import analyze_main

        midflight = tmp_path / "midflight"
        midflight.mkdir()
        now = time_mod.time()
        with open(midflight / "progress.jsonl", "w") as handle:
            for unix, done in ((now - 10.0, 10), (now, 30)):
                handle.write(json.dumps({
                    "stage": "epochs", "done": done, "total": 60,
                    "rate": 2.0, "unix": unix, "wall_s": 0.0,
                    "interval_s": 0.25,
                }) + "\n")
        assert analyze_main(["watch", str(midflight), "--once"]) == 0
        out = capsys.readouterr().out
        assert "(in flight)" in out
        assert "30/60" in out
        assert "eta" in out
        assert "15.0s" in out  # (60-30)/2 per s

    def test_watch_strict_flags_a_stalled_run(self, tmp_path, capsys):
        import json

        from repro.cli import analyze_main

        stalled = tmp_path / "stalled"
        stalled.mkdir()
        with open(stalled / "resources.jsonl", "w") as handle:
            handle.write(json.dumps({
                "unix": 1000.0, "wall_s": 1.0, "interval_s": 0.5,
                "cpu_s": 1.0, "rss_kb": 1.0, "peak_rss_kb": 1.0,
                "open_span": "experiment", "pid": 1,
            }) + "\n")
        # the sample is decades old: stalled under any budget
        assert analyze_main(
            ["watch", str(stalled), "--once", "--strict"]
        ) == 1
        out = capsys.readouterr().out
        assert "::warning ::" in out
        # without --strict the stall is an annotation, not a failure
        assert analyze_main(["watch", str(stalled), "--once"]) == 0

    def test_watch_missing_dir_is_a_clean_error(self, tmp_path, capsys):
        from repro.cli import analyze_main

        assert analyze_main(
            ["watch", str(tmp_path / "absent"), "--once"]
        ) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_export_chrome_trace(self, trace_dirs, tmp_path, capsys):
        import json

        from repro.cli import analyze_main
        from repro.obs.export import read_jsonl

        output = tmp_path / "events.json"
        assert analyze_main(
            ["export", trace_dirs[0], "-o", str(output)]
        ) == 0
        out = capsys.readouterr().out
        assert "span events" in out

        document = json.loads(output.read_text())
        spans = read_jsonl(Path(trace_dirs[0]) / "spans.jsonl")
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(events) == len(spans)

    def test_export_default_output_lands_in_trace_dir(
        self, trace_dirs, capsys
    ):
        from repro.cli import analyze_main

        assert analyze_main(["export", trace_dirs[0]]) == 0
        assert (Path(trace_dirs[0]) / "trace_events.json").is_file()

    def test_export_missing_dir_is_a_clean_error(self, tmp_path, capsys):
        from repro.cli import analyze_main

        assert analyze_main(["export", str(tmp_path / "absent")]) == 2
        assert "Traceback" not in capsys.readouterr().err
