"""Tests for the repro-simulate CLI and the repro-experiments runner."""

import pytest

from repro.cli import main
from repro.experiments import runner
from repro.net.addresses import IPv4Address
from repro.trace.format import load_trace
from repro.trace.pcap import read_pcap


class TestSimulateCli:
    def test_pcap_output(self, tmp_path, capsys):
        out = str(tmp_path / "window.pcap")
        code = main(["--start", "0", "--end", "60", "--slots", "6",
                     "--format", "pcap", "-o", out])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        trace = read_pcap(out, server_address=IPv4Address("128.223.40.15"))
        assert len(trace) > 100

    def test_npz_output_roundtrips(self, tmp_path, capsys):
        out = str(tmp_path / "window.npz")
        code = main(["--end", "60", "--slots", "6", "--format", "npz",
                     "-o", out])
        assert code == 0
        trace = load_trace(out)
        assert len(trace) > 100
        assert trace.server_address == IPv4Address("128.223.40.15")

    def test_log_written(self, tmp_path):
        out = str(tmp_path / "w.npz")
        log = str(tmp_path / "server.log")
        code = main(["--end", "60", "--slots", "4", "--format", "npz",
                     "-o", out, "--log", log])
        assert code == 0
        from repro.gameserver.gamelog import parse_log

        with open(log) as handle:
            events = parse_log(handle)
        assert any(e.event == "map_start" for e in events)

    def test_bad_window_rejected(self, tmp_path, capsys):
        out = str(tmp_path / "x.pcap")
        assert main(["--start", "60", "--end", "30", "-o", out]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_slots_rejected(self, tmp_path, capsys):
        out = str(tmp_path / "x.pcap")
        assert main(["--end", "30", "--slots", "0", "-o", out]) == 2

    def test_end_beyond_week_rejected(self, tmp_path, capsys):
        out = str(tmp_path / "x.pcap")
        assert main(["--end", "99999999", "-o", out]) == 2


class TestExperimentsList:
    def test_list_prints_every_id_with_description(self, capsys):
        assert runner.main(["--list"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == len(runner.REGISTRY)
        listed = {}
        for line in lines:
            experiment_id, description = line.split(None, 1)
            listed[experiment_id] = description
        assert set(listed) == set(runner.REGISTRY)
        # descriptions are the experiments' one-line titles, not ids
        assert listed["facilitynet"] == runner.DESCRIPTIONS["facilitynet"]
        assert "oversubscription" in listed["facilitynet"]
        assert all(description.strip() for description in listed.values())

    def test_list_runs_nothing(self, capsys):
        # --list must exit before any experiment executes (fast path)
        assert runner.main(["--list", "table1"]) == 0
        out = capsys.readouterr().out
        assert "reproduced within tolerance" not in out
