"""Tests for the streaming exporters and trace session (repro.obs.export)."""

import json

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.export import (
    ARTIFACT_SCHEMA_VERSION,
    JsonlWriter,
    NpzColumnWriter,
    TraceSession,
    fingerprint,
    git_revision,
    load_manifest,
    read_jsonl,
    to_jsonable,
)


class TestToJsonable:
    def test_native_types_pass_through(self):
        for value in (None, True, 3, 2.5, "s"):
            assert to_jsonable(value) == value

    def test_numpy_scalars_and_arrays(self):
        assert to_jsonable(np.int64(7)) == 7
        assert to_jsonable(np.float32(0.5)) == 0.5
        assert to_jsonable(np.bool_(True)) is True
        assert to_jsonable(np.arange(3)) == [0, 1, 2]

    def test_containers_recurse(self):
        out = to_jsonable({"a": (np.int64(1), [np.float64(2.0)])})
        assert out == {"a": [1, [2.0]]}
        json.dumps(out)

    def test_unexportable_raises(self):
        with pytest.raises(TypeError, match="not JSON-exportable"):
            to_jsonable(object())


class TestNumpyRoundTrip:
    """Exporter serialisation is lossless for numpy scalars.

    A float64 *is* a JSON double and an int64 fits Python's unbounded
    int, so writing through the JSONL layer and parsing back must
    reproduce the exact value — the property the streaming artifacts
    rely on for bit-identical reanalysis.
    """

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_int64_lossless(self, value):
        scalar = np.int64(value)
        assert json.loads(json.dumps(to_jsonable(scalar))) == int(scalar)

    @given(
        st.floats(allow_nan=False, allow_infinity=False, width=64)
    )
    def test_float64_lossless(self, value):
        scalar = np.float64(value)
        decoded = json.loads(json.dumps(to_jsonable(scalar)))
        assert decoded == float(scalar)
        assert np.float64(decoded) == scalar  # exact, not approximate

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_float32_widens_exactly(self, value):
        scalar = np.float32(value)
        decoded = json.loads(json.dumps(to_jsonable(scalar)))
        assert np.float32(decoded) == scalar

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_int32_lossless(self, value):
        assert json.loads(json.dumps(to_jsonable(np.int32(value)))) == value

    @given(st.booleans())
    def test_bool_lossless(self, value):
        decoded = json.loads(json.dumps(to_jsonable(np.bool_(value))))
        assert decoded is value


class TestFingerprint:
    def test_stable_across_key_order(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})

    def test_numpy_and_python_values_agree(self):
        assert fingerprint({"n": np.int64(3)}) == fingerprint({"n": 3})


class TestGitRevision:
    def test_inside_this_repo(self):
        rev = git_revision()
        assert rev == "unknown" or len(rev) == 40

    def test_outside_a_repo(self, tmp_path):
        assert git_revision(cwd=tmp_path) == "unknown"


class TestJsonlWriter:
    def test_streaming_rows_roundtrip(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        with JsonlWriter(path) as writer:
            writer.write({"epoch": 0, "n": np.int64(3)})
            # flushed per record: readable before close
            assert read_jsonl(path) == [{"epoch": 0, "n": 3}]
            writer.write({"epoch": 1, "n": 4})
        assert writer.rows == 2
        assert read_jsonl(path) == [
            {"epoch": 0, "n": 3},
            {"epoch": 1, "n": 4},
        ]

    def test_write_after_close_raises(self, tmp_path):
        writer = JsonlWriter(tmp_path / "rows.jsonl")
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.write({})

    def test_reader_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('{"a":1}\n{"b":2}\n{"tor', encoding="utf-8")
        assert read_jsonl(path) == [{"a": 1}, {"b": 2}]


class TestNpzColumnWriter:
    def test_rows_become_columns(self, tmp_path):
        path = tmp_path / "cols.npz"
        writer = NpzColumnWriter(path)
        writer.append(epoch=0, load=1.5)
        writer.append(epoch=1, load=2.5)
        writer.close()
        with np.load(path) as data:
            assert list(data["epoch"]) == [0, 1]
            assert list(data["load"]) == [1.5, 2.5]

    def test_schema_fixed_by_first_row(self, tmp_path):
        writer = NpzColumnWriter(tmp_path / "cols.npz")
        writer.append(a=1)
        with pytest.raises(ValueError, match="schema"):
            writer.append(b=1)

    def test_append_after_close_raises(self, tmp_path):
        writer = NpzColumnWriter(tmp_path / "cols.npz")
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.append(a=1)


class TestTraceSession:
    def test_finish_writes_manifest_and_inventory(self, tmp_path):
        session = TraceSession(tmp_path / "run", info={"seed": 7})
        session.stream("epochs").write({"epoch": 0})
        session.columns("series").append(t=0.0, v=1.0)
        session.save_arrays("occupancy", grid=np.eye(2))
        with session.tracer.span("root"):
            pass
        manifest_path = session.finish({"total": 3})

        manifest = load_manifest(tmp_path / "run")
        assert manifest_path.name == "manifest.json"
        assert manifest["schema"] == ARTIFACT_SCHEMA_VERSION
        assert manifest["seed"] == 7
        assert manifest["metrics"] == {"total": 3}
        assert manifest["duration_s"] >= 0
        assert manifest["artifacts"]["epochs.jsonl"] == {
            "kind": "jsonl",
            "rows": 1,
        }
        assert manifest["artifacts"]["series.npz"]["kind"] == "columnar"
        assert manifest["artifacts"]["occupancy.npz"] == {"kind": "arrays"}
        assert manifest["artifacts"]["spans.jsonl"]["rows"] == 1
        # every inventoried artifact exists on disk
        for name in manifest["artifacts"]:
            assert (tmp_path / "run" / name).is_file()

    def test_save_arrays_dedups_names(self, tmp_path):
        session = TraceSession(tmp_path / "run")
        first = session.save_arrays("occ", a=np.zeros(1))
        second = session.save_arrays("occ", a=np.ones(1))
        assert first.name == "occ.npz"
        assert second.name == "occ-1.npz"

    def test_finish_is_idempotent(self, tmp_path):
        session = TraceSession(tmp_path / "run")
        assert session.finish() == session.finish()


class TestSessionLifecycle:
    def test_start_and_end_install_and_clear(self, tmp_path):
        from repro import obs

        assert obs.current_session() is None
        session = obs.start_trace_session(tmp_path / "run", seed=1)
        try:
            assert obs.current_session() is session
            assert obs.trace.current_tracer() is session.tracer
            with pytest.raises(RuntimeError, match="already active"):
                obs.start_trace_session(tmp_path / "other")
        finally:
            manifest_path = obs.end_trace_session()
        assert obs.current_session() is None
        assert obs.trace.current_tracer() is None
        assert manifest_path.is_file()
