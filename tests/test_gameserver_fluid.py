"""Unit tests for the count-level (fluid) generator."""

import numpy as np
import pytest

from repro.gameserver.fluid import CountLevelGenerator, FluidSeries
from repro.gameserver.generator import PacketLevelGenerator
from repro.net.headers import OverheadModel


@pytest.fixture(scope="module")
def quick_fluid(quick_profile, quick_population):
    generator = CountLevelGenerator(
        quick_profile, population=quick_population, seed=11
    )
    return generator, generator.per_second()


class TestPerSecond:
    def test_length_matches_horizon(self, quick_fluid, quick_profile):
        _, series = quick_fluid
        assert len(series) == int(np.ceil(quick_profile.duration))

    def test_counts_non_negative(self, quick_fluid):
        _, series = quick_fluid
        assert series.in_counts.min() >= 0
        assert series.out_counts.min() >= 0
        assert series.in_bytes.min() >= 0
        assert series.out_bytes.min() >= 0

    def test_rate_structure_matches_population(
        self, quick_fluid, quick_population, quick_profile
    ):
        _, series = quick_fluid
        times = np.arange(len(series)) + 0.5
        players = quick_population.players_at(times)
        busy = players >= 2
        if busy.sum() < 10:
            pytest.skip("too few busy seconds")
        per_player_in = series.in_counts[busy] / players[busy]
        expected = 1.0 / quick_profile.client_update_interval
        assert per_player_in.mean() == pytest.approx(expected, rel=0.25)

    def test_map_gap_zeroes_traffic(self, quick_fluid, quick_population):
        _, series = quick_fluid
        for gap_start, gap_end in quick_population.gap_intervals():
            middle = int((gap_start + gap_end) / 2)
            if gap_end - gap_start >= 2 and middle < len(series):
                assert series.total_counts[middle] < series.total_counts.mean() * 0.3

    def test_agrees_with_packet_level(self, quick_profile, quick_population):
        fluid = CountLevelGenerator(
            quick_profile, population=quick_population, seed=11
        ).per_second()
        packet = PacketLevelGenerator(
            quick_profile, population=quick_population, seed=11
        ).generate(0.0, 120.0)
        fluid_rate = fluid.total_counts[:120].mean()
        packet_rate = len(packet) / 120.0
        assert fluid_rate == pytest.approx(packet_rate, rel=0.15)

    def test_bandwidth_accounting(self, quick_fluid):
        _, series = quick_fluid
        overhead = OverheadModel().per_packet
        total = series.bandwidth_bps(overhead)
        split = (
            series.bandwidth_bps(overhead, "in") + series.bandwidth_bps(overhead, "out")
        )
        assert np.allclose(total, split)

    def test_unknown_direction_rejected(self, quick_fluid):
        _, series = quick_fluid
        with pytest.raises(ValueError):
            series.packet_rates("sideways")
        with pytest.raises(ValueError):
            series.bandwidth_bps(54, "sideways")


class TestRebinAndViews:
    def test_rebin_conserves_totals(self, quick_fluid):
        _, series = quick_fluid
        coarse = series.rebin(60)
        kept = len(coarse) * 60
        assert coarse.total_counts.sum() == pytest.approx(
            series.total_counts[:kept].sum()
        )

    def test_rebin_factor_one(self, quick_fluid):
        _, series = quick_fluid
        assert series.rebin(1) is series

    def test_rebin_invalid(self, quick_fluid):
        _, series = quick_fluid
        with pytest.raises(ValueError):
            series.rebin(0)

    def test_to_binned_views(self, quick_fluid):
        _, series = quick_fluid
        for direction in (None, "in", "out"):
            view = series.to_binned(direction)
            assert len(view) == len(series)
        with pytest.raises(ValueError):
            series.to_binned("bad")

    def test_times(self, quick_fluid):
        _, series = quick_fluid
        assert series.times[0] == 0.0
        assert series.times[1] == pytest.approx(series.bin_size)


class TestHighResolutionWindow:
    def test_tick_bins_carry_bursts(self, quick_profile, quick_population):
        generator = CountLevelGenerator(
            quick_profile, population=quick_population, seed=11
        )
        window = generator.high_resolution_window(60.0, 120.0, bin_size=0.010)
        out = window.out_counts
        # bins aligned with ticks (every 5th) should hold nearly all packets
        tick_phase = out.reshape(-1, 5).sum(axis=0)
        assert tick_phase.max() > 0.9 * tick_phase.sum()

    def test_inbound_spread_across_bins(self, quick_profile, quick_population):
        generator = CountLevelGenerator(
            quick_profile, population=quick_population, seed=11
        )
        window = generator.high_resolution_window(60.0, 120.0, bin_size=0.010)
        inbound = window.in_counts.reshape(-1, 5).sum(axis=0)
        assert inbound.max() < 0.5 * inbound.sum()

    def test_invalid_windows_rejected(self, quick_profile, quick_population):
        generator = CountLevelGenerator(
            quick_profile, population=quick_population, seed=11
        )
        with pytest.raises(ValueError):
            generator.high_resolution_window(10.0, 5.0)
        with pytest.raises(ValueError):
            generator.high_resolution_window(0.0, 10.0, bin_size=2.0)

    def test_rate_consistency_with_per_second(self, quick_profile, quick_population):
        generator = CountLevelGenerator(
            quick_profile, population=quick_population, seed=11
        )
        highres = generator.high_resolution_window(60.0, 120.0, bin_size=0.010)
        per_second = generator.per_second()
        high_rate = highres.total_counts.sum() / 60.0
        low_rate = per_second.total_counts[60:120].mean()
        assert high_rate == pytest.approx(low_rate, rel=0.2)
