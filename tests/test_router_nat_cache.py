"""Unit tests for the NAT table/device and the route cache."""

import numpy as np
import pytest

from repro.net.addresses import IPv4Address
from repro.router.cache import (
    EvictionPolicy,
    LookupCostModel,
    RouteCache,
    simulate_cache,
)
from repro.router.device import DeviceProfile
from repro.router.nat import NatDevice, NatTable, NatTableFullError
from repro.trace.packet import Direction
from repro.trace.trace import TraceBuilder

PUBLIC = IPv4Address("64.0.0.1")


class TestNatTable:
    def test_binding_created_and_reused(self):
        table = NatTable(PUBLIC)
        first = table.touch(100, 1000, now=0.0)
        second = table.touch(100, 1000, now=1.0)
        assert first is second
        assert table.created_total == 1
        assert second.last_used == 1.0

    def test_distinct_flows_distinct_ports(self):
        table = NatTable(PUBLIC)
        a = table.touch(100, 1000, now=0.0)
        b = table.touch(100, 2000, now=0.0)
        assert a.mapped_port != b.mapped_port

    def test_idle_eviction(self):
        table = NatTable(PUBLIC, capacity=1, idle_timeout=10.0)
        table.touch(100, 1000, now=0.0)
        # after the timeout the stale binding is evicted to admit a new one
        table.touch(200, 2000, now=20.0)
        assert table.expired_total == 1
        assert len(table) == 1

    def test_capacity_enforced(self):
        table = NatTable(PUBLIC, capacity=1, idle_timeout=1000.0)
        table.touch(100, 1000, now=0.0)
        with pytest.raises(NatTableFullError):
            table.touch(200, 2000, now=1.0)

    def test_peak_size_tracked(self):
        table = NatTable(PUBLIC, capacity=10)
        for i in range(5):
            table.touch(i, 1000, now=0.0)
        assert table.peak_size == 5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NatTable(PUBLIC, capacity=0)
        with pytest.raises(ValueError):
            NatTable(PUBLIC, idle_timeout=0.0)


class TestNatDevice:
    def test_counts_consistent(self, quick_trace):
        result = NatDevice(seed=3).run(quick_trace)
        assert result.nat_to_server <= result.clients_to_nat
        assert result.nat_to_clients <= result.server_to_nat
        assert 0.0 <= result.incoming_loss_rate <= 1.0
        assert 0.0 <= result.outgoing_loss_rate <= 1.0

    def test_table_populated(self, quick_trace):
        device = NatDevice(seed=3)
        result = device.run(quick_trace)
        assert result.table_created > 0
        assert result.table_peak >= 1

    def test_custom_device_profile(self, quick_trace):
        slow = NatDevice(device=DeviceProfile(lookup_rate=200.0), seed=3)
        result = slow.run(quick_trace)
        # an 8-slot server still offers ~250+ pps; a 200 pps box must drop
        assert result.incoming_loss_rate > 0.0


class TestRouteCache:
    def test_hit_after_insert(self):
        cache = RouteCache(4)
        assert not cache.access(1)
        assert cache.access(1)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_evicts_oldest(self):
        cache = RouteCache(2, policy=EvictionPolicy.LRU)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # 1 is now most recent
        cache.access(3)  # evicts 2
        assert 1 in cache
        assert 2 not in cache
        assert 3 in cache

    def test_lfu_keeps_frequent(self):
        cache = RouteCache(2, policy=EvictionPolicy.LFU)
        for _ in range(5):
            cache.access(1)
        cache.access(2)
        cache.access(3)  # evicts 2 (frequency 1), keeps 1
        assert 1 in cache
        assert 3 in cache

    def test_size_preferential_rejects_large(self):
        cache = RouteCache(1, policy=EvictionPolicy.SIZE_PREFERENTIAL,
                           size_threshold=100)
        cache.access(1, size=50)
        cache.access(2, size=1400)  # large: may not evict the small entry
        assert 1 in cache
        assert 2 not in cache
        assert cache.stats.rejected_insertions == 1

    def test_size_preferential_small_evicts(self):
        cache = RouteCache(1, policy=EvictionPolicy.SIZE_PREFERENTIAL,
                           size_threshold=100)
        cache.access(1, size=50)
        cache.access(2, size=40)
        assert 2 in cache

    def test_frequency_preferential_guards_hot_entries(self):
        cache = RouteCache(1, policy=EvictionPolicy.FREQUENCY_PREFERENTIAL)
        for _ in range(10):
            cache.access(1)
        cache.access(2)  # frequency 1 < resident entry's count
        assert 1 in cache
        assert 2 not in cache

    def test_capacity_never_exceeded(self):
        cache = RouteCache(8, policy=EvictionPolicy.LRU)
        rng = np.random.default_rng(0)
        for key in rng.integers(0, 100, size=1000):
            cache.access(int(key))
        assert len(cache) <= 8

    def test_per_class_stats(self):
        cache = RouteCache(4)
        cache.access(1, label="game")
        cache.access(1, label="game")
        cache.access(2, label="web")
        assert cache.stats.class_hit_rate("game") == pytest.approx(0.5)
        assert cache.stats.class_hit_rate("web") == 0.0
        assert cache.stats.class_hit_rate("absent") == 0.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RouteCache(0)


class TestSimulateCache:
    def test_stream_processing(self):
        destinations = np.asarray([1, 1, 2, 1, 3, 1])
        sizes = np.full(6, 40)
        stats = simulate_cache(destinations, sizes, RouteCache(2))
        assert stats.accesses == 6
        assert stats.hits == 3  # repeats of key 1 after first access

    def test_labels_length_checked(self):
        with pytest.raises(ValueError):
            simulate_cache(
                np.asarray([1, 2]), np.asarray([1, 2]), RouteCache(2),
                labels=np.asarray(["a"]),
            )

    def test_shape_mismatch_checked(self):
        with pytest.raises(ValueError):
            simulate_cache(np.asarray([1]), np.asarray([1, 2]), RouteCache(2))


class TestLookupCostModel:
    def test_all_hits_fastest(self):
        model = LookupCostModel()
        assert model.effective_rate(1.0) > model.effective_rate(0.0)

    def test_speedup_math(self):
        model = LookupCostModel(hit_cost=0.0001, miss_cost=0.001)
        assert model.speedup(1.0, 0.0) == pytest.approx(10.0)

    def test_invalid_hit_rate(self):
        with pytest.raises(ValueError):
            LookupCostModel().effective_rate(1.5)
