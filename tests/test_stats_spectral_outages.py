"""Unit tests for spectral periodicity and dip/outage detection."""

import numpy as np
import pytest

from repro.core.outages import classify_dips, detect_dips, match_expected_dips
from repro.stats.spectral import detect_tick_frequency, periodogram


def tick_series(n_bins=12_000, period_bins=5, amplitude=20.0, seed=0):
    """A 10 ms count series with a 50 ms comb plus noise."""
    rng = np.random.default_rng(seed)
    series = rng.poisson(4.0, n_bins).astype(float)
    series[::period_bins] += amplitude
    return series


class TestPeriodogram:
    def test_tick_line_detected(self):
        spectrum = periodogram(tick_series(), 0.010)
        frequency = spectrum.peak_frequency(min_frequency=2.0)
        assert frequency == pytest.approx(20.0, abs=0.5)

    def test_peak_period(self):
        spectrum = periodogram(tick_series(), 0.010)
        assert spectrum.peak_period(min_period=0.02, max_period=0.3) == (
            pytest.approx(0.05, abs=0.005)
        )

    def test_line_strength_large_for_comb(self):
        spectrum = periodogram(tick_series(), 0.010)
        assert spectrum.line_strength(20.0) > 50.0

    def test_noise_has_no_strong_line(self):
        noise = np.random.default_rng(1).poisson(4.0, 12_000).astype(float)
        spectrum = periodogram(noise, 0.010)
        assert spectrum.line_strength(20.0) < 30.0

    def test_detect_tick_frequency(self):
        frequency, strength = detect_tick_frequency(tick_series(), 0.010)
        assert frequency == pytest.approx(20.0, abs=0.5)
        assert strength > 50.0

    def test_validation(self):
        with pytest.raises(ValueError):
            periodogram(np.ones(4), 0.01)
        with pytest.raises(ValueError):
            periodogram(np.ones((3, 3)), 0.01)
        with pytest.raises(ValueError):
            periodogram(np.ones(100), 0.0)
        spectrum = periodogram(tick_series(), 0.010)
        with pytest.raises(ValueError):
            spectrum.peak_frequency(min_frequency=1e9)
        with pytest.raises(ValueError):
            # a frequency off the FFT grid with a sub-resolution bandwidth
            spectrum.line_strength(20.0001234, bandwidth=1e-9)

    def test_on_real_generator_output(self, quick_profile, quick_population):
        from repro.gameserver.fluid import CountLevelGenerator

        window = CountLevelGenerator(
            quick_profile, population=quick_population, seed=11
        ).high_resolution_window(60.0, 120.0, bin_size=0.010)
        frequency, strength = detect_tick_frequency(
            window.out_counts, 0.010
        )
        assert frequency == pytest.approx(20.0, abs=1.0)
        assert strength > 10.0


class TestDipDetection:
    def make_rates(self, dips=((300, 310),), n=1000, level=800.0, seed=0):
        rng = np.random.default_rng(seed)
        rates = level + rng.normal(0, 20.0, n)
        for start, end in dips:
            rates[start:end] = 5.0
        return rates

    def test_single_dip_found(self):
        events = detect_dips(self.make_rates(), 1.0)
        assert len(events) == 1
        event = events[0]
        assert event.start_time == pytest.approx(300.0, abs=2.0)
        assert event.duration == pytest.approx(10.0, abs=2.0)
        assert event.depth > 0.9

    def test_multiple_dips(self):
        events = detect_dips(self.make_rates(dips=((200, 205), (600, 640))), 1.0)
        assert len(events) == 2
        assert events[1].duration > events[0].duration

    def test_no_dips_in_flat_series(self):
        assert detect_dips(self.make_rates(dips=()), 1.0) == []

    def test_all_zero_series(self):
        assert detect_dips(np.zeros(100), 1.0) == []

    def test_leading_silence_ignored(self):
        rates = self.make_rates(dips=())
        rates[:50] = 0.0
        events = detect_dips(rates, 1.0)
        assert all(event.start_time >= 50.0 for event in events)

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_dips(np.ones(10), 1.0, threshold=1.5)
        with pytest.raises(ValueError):
            detect_dips(np.ones(10), 0.0)
        with pytest.raises(ValueError):
            detect_dips(np.ones((2, 5)), 1.0)

    def test_match_expected(self):
        events = detect_dips(self.make_rates(dips=((300, 310),)), 1.0)
        hits = match_expected_dips(events, [305.0, 700.0], tolerance=10.0)
        assert hits == [True, False]

    def test_classify_map_vs_other(self):
        rates = self.make_rates(
            dips=((1800, 1806), (3600, 3606), (2500, 2520)), n=4000
        )
        events = detect_dips(rates, 1.0)
        classified = classify_dips(events, map_period=1800.0)
        assert len(classified["map_change"]) == 2
        assert len(classified["other"]) == 1

    def test_classify_validation(self):
        with pytest.raises(ValueError):
            classify_dips([], map_period=0.0)

    def test_on_simulated_week_window(self, quick_profile, quick_population):
        from repro.gameserver.fluid import CountLevelGenerator

        fluid = CountLevelGenerator(
            quick_profile, population=quick_population, seed=11
        ).per_second()
        events = detect_dips(fluid.total_counts, 1.0, threshold=0.4)
        expected = quick_population.map_change_times
        hits = match_expected_dips(events, expected, tolerance=15.0)
        assert all(hits)
