"""Tests for streaming fluid-series summing and k-way trace merging."""

import numpy as np
import pytest

from repro.fleet import (
    FluidAccumulator,
    TraceAccumulator,
    kway_merge_traces,
    merge_fluid_series,
    sum_fluid_series,
)
from repro.gameserver.fluid import FluidSeries
from repro.net.addresses import IPv4Address
from repro.net.headers import HeaderOverhead, OverheadModel
from repro.trace.packet import Direction
from repro.trace.trace import Trace, TraceBuilder


def make_series(values, bin_size=1.0, start=0.0):
    arr = np.asarray(values, dtype=float)
    return FluidSeries(
        bin_size=bin_size,
        start_time=start,
        in_counts=arr,
        out_counts=2 * arr,
        in_bytes=10 * arr,
        out_bytes=20 * arr,
    )


def make_trace(timestamps, server="10.0.0.2", payload=40, overhead=None):
    server = IPv4Address(server)
    builder = TraceBuilder(server_address=server, overhead=overhead)
    for t in timestamps:
        builder.add(t, Direction.IN, IPv4Address("10.0.0.1").value,
                    server.value, 27005, 27015, payload)
    return builder.build()


class TestFluidSum:
    def test_sum_adds_all_four_arrays(self):
        total = sum_fluid_series(make_series([1, 2, 3]), make_series([10, 20, 30]))
        assert np.array_equal(total.in_counts, [11, 22, 33])
        assert np.array_equal(total.out_counts, [22, 44, 66])
        assert np.array_equal(total.in_bytes, [110, 220, 330])
        assert np.array_equal(total.out_bytes, [220, 440, 660])

    def test_none_accumulator_passes_through(self):
        series = make_series([1, 2])
        assert sum_fluid_series(None, series) is series

    def test_length_mismatch_pads_with_zeros(self):
        total = sum_fluid_series(make_series([1, 2, 3, 4]), make_series([1]))
        assert np.array_equal(total.in_counts, [2, 2, 3, 4])
        assert len(total) == 4

    def test_bin_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="bin_size"):
            sum_fluid_series(make_series([1]), make_series([1], bin_size=60.0))

    def test_start_time_mismatch_rejected(self):
        with pytest.raises(ValueError, match="start_time"):
            sum_fluid_series(make_series([1]), make_series([1], start=5.0))

    def test_merge_fluid_series_and_accumulator_agree(self):
        parts = [make_series([i, i + 1]) for i in range(5)]
        merged = merge_fluid_series(parts)
        accumulator = FluidAccumulator()
        for part in parts:
            accumulator.add(part)
        assert np.array_equal(merged.in_counts, accumulator.result().in_counts)
        assert accumulator.servers_added == 5

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            merge_fluid_series([])
        with pytest.raises(ValueError):
            FluidAccumulator().result()


class TestKwayMerge:
    def test_timestamps_sorted_and_ties_keep_source_order(self):
        a = make_trace([0.0, 1.0, 2.0], payload=10)
        b = make_trace([0.5, 1.0, 2.0], payload=20)
        c = make_trace([1.0, 3.0], payload=30)
        merged = kway_merge_traces([a, b, c])
        assert len(merged) == 8
        assert np.all(np.diff(merged.timestamps) >= 0)
        # the three t=1.0 packets appear in source order a, b, c
        tied = merged.payload_sizes[merged.timestamps == 1.0]
        assert list(tied) == [10, 20, 30]

    def test_common_server_address_kept(self):
        merged = kway_merge_traces([make_trace([0.0]), make_trace([1.0])])
        assert merged.server_address == IPv4Address("10.0.0.2")

    def test_mixed_server_addresses_become_none(self):
        merged = kway_merge_traces(
            [make_trace([0.0], server="10.0.0.2"), make_trace([1.0], server="10.0.0.9")]
        )
        assert merged.server_address is None

    def test_empty_inputs_skipped(self):
        merged = kway_merge_traces([Trace.empty(), make_trace([0.0, 1.0]), Trace.empty()])
        assert len(merged) == 2
        assert merged.server_address == IPv4Address("10.0.0.2")

    def test_all_empty_returns_empty(self):
        assert len(kway_merge_traces([Trace.empty(), Trace.empty()])) == 0
        assert len(kway_merge_traces([])) == 0

    def test_overhead_taken_from_first_nonempty(self):
        overhead = OverheadModel(HeaderOverhead(link=0, network=20, transport=8))
        merged = kway_merge_traces(
            [Trace.empty(), make_trace([0.0], overhead=overhead), make_trace([1.0])]
        )
        assert merged.overhead.per_packet == overhead.per_packet


class TestTraceAccumulator:
    def test_bounded_fanin_equals_flat_merge(self):
        traces = [
            make_trace([0.1 * i, 1.0, 2.0 + 0.1 * i], payload=10 + i) for i in range(5)
        ]
        flat = kway_merge_traces(traces)
        accumulator = TraceAccumulator(fanin=2)
        for trace in traces:
            accumulator.add(trace)
        chunked = accumulator.result()
        assert np.array_equal(flat.timestamps, chunked.timestamps)
        assert np.array_equal(flat.payload_sizes, chunked.payload_sizes)
        assert accumulator.servers_added == 5

    def test_result_is_idempotent(self):
        accumulator = TraceAccumulator()
        accumulator.add(make_trace([0.0]))
        assert len(accumulator.result()) == len(accumulator.result()) == 1

    def test_rejects_bad_fanin_and_empty_result(self):
        with pytest.raises(ValueError):
            TraceAccumulator(fanin=1)
        with pytest.raises(ValueError):
            TraceAccumulator().result()
