"""Unit tests for IPv4/MAC address value types."""

import pytest

from repro.net.addresses import IPv4Address, MACAddress, address_block


class TestIPv4Address:
    def test_parse_dotted_quad(self):
        addr = IPv4Address("192.168.1.10")
        assert addr.octets == (192, 168, 1, 10)
        assert str(addr) == "192.168.1.10"

    def test_from_int_and_back(self):
        assert IPv4Address(0x0A000001).value == 0x0A000001
        assert str(IPv4Address(0x0A000001)) == "10.0.0.1"

    def test_from_bytes(self):
        assert IPv4Address(b"\x0a\x00\x00\x02") == IPv4Address("10.0.0.2")

    def test_packed_roundtrip(self):
        addr = IPv4Address("172.16.254.3")
        assert IPv4Address(addr.packed) == addr

    def test_equality_across_representations(self):
        assert IPv4Address("10.0.0.1") == "10.0.0.1"
        assert IPv4Address("10.0.0.1") == 0x0A000001

    def test_hashable(self):
        assert len({IPv4Address("1.2.3.4"), IPv4Address("1.2.3.4")}) == 1

    def test_ordering(self):
        assert IPv4Address("10.0.0.1") < IPv4Address("10.0.0.2")

    def test_addition_wraps(self):
        assert IPv4Address("255.255.255.255") + 1 == IPv4Address("0.0.0.0")

    def test_immutable(self):
        addr = IPv4Address("1.1.1.1")
        with pytest.raises(AttributeError):
            addr._value = 0

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"])
    def test_invalid_strings_raise(self, bad):
        with pytest.raises(ValueError):
            IPv4Address(bad)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            IPv4Address(1.5)

    @pytest.mark.parametrize(
        "addr,private",
        [
            ("10.1.2.3", True),
            ("172.16.0.1", True),
            ("172.31.255.255", True),
            ("172.32.0.1", False),
            ("192.168.0.1", True),
            ("8.8.8.8", False),
        ],
    )
    def test_is_private(self, addr, private):
        assert IPv4Address(addr).is_private() is private


class TestMACAddress:
    def test_parse_colon_form(self):
        mac = MACAddress("02:00:00:00:00:01")
        assert mac.value == 0x020000000001
        assert str(mac) == "02:00:00:00:00:01"

    def test_parse_dash_form(self):
        assert MACAddress("02-00-00-00-00-01") == MACAddress("02:00:00:00:00:01")

    def test_packed_roundtrip(self):
        mac = MACAddress("de:ad:be:ef:00:01")
        assert MACAddress(mac.packed) == mac

    def test_invalid_length_raises(self):
        with pytest.raises(ValueError):
            MACAddress("02:00:00:00:00")

    def test_invalid_bytes_raise(self):
        with pytest.raises(ValueError):
            MACAddress(b"\x01\x02")

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            MACAddress(2**48)


class TestAddressBlock:
    def test_yields_consecutive(self):
        block = list(address_block(IPv4Address("10.0.0.1"), 3))
        assert [str(a) for a in block] == ["10.0.0.1", "10.0.0.2", "10.0.0.3"]

    def test_empty_block(self):
        assert list(address_block(IPv4Address("10.0.0.1"), 0)) == []
