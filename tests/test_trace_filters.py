"""Unit tests for composable trace filters."""

import numpy as np
import pytest

from repro.net.addresses import IPv4Address
from repro.net.ip import PROTO_TCP, PROTO_UDP
from repro.trace.filters import (
    by_client,
    by_direction,
    by_payload_size,
    by_port,
    by_protocol,
    by_time,
    inbound,
    outbound,
    small_packets,
)
from repro.trace.packet import Direction


class TestBasicFilters:
    def test_direction(self, synthetic_trace):
        assert inbound().count(synthetic_trace) == 10
        assert outbound().count(synthetic_trace) == 5
        assert by_direction(Direction.IN).count(synthetic_trace) == 10

    def test_time_window(self, synthetic_trace):
        selected = by_time(0.2, 0.5).apply(synthetic_trace)
        assert np.all(selected.timestamps >= 0.2)
        assert np.all(selected.timestamps < 0.5)

    def test_time_inverted_rejected(self):
        with pytest.raises(ValueError):
            by_time(1.0, 0.0)

    def test_payload_size(self, synthetic_trace):
        # inbound packets are 40 B, outbound 130 B
        assert by_payload_size(0, 100).count(synthetic_trace) == 10
        assert by_payload_size(100, 200).count(synthetic_trace) == 5

    def test_payload_size_empty_window_rejected(self):
        with pytest.raises(ValueError):
            by_payload_size(100, 50)

    def test_small_packets(self, synthetic_trace):
        assert small_packets(200).count(synthetic_trace) == 15
        assert small_packets(100).count(synthetic_trace) == 10

    def test_by_client(self, synthetic_trace):
        assert by_client(IPv4Address("10.0.0.1")).count(synthetic_trace) == 15
        assert by_client(IPv4Address("9.9.9.9")).count(synthetic_trace) == 0

    def test_by_port(self, synthetic_trace):
        assert by_port(27015).count(synthetic_trace) == 15
        assert by_port(9999).count(synthetic_trace) == 0

    def test_by_port_validation(self):
        with pytest.raises(ValueError):
            by_port(70000)

    def test_by_protocol(self, synthetic_trace):
        assert by_protocol(PROTO_UDP).count(synthetic_trace) == 15
        assert by_protocol(PROTO_TCP).count(synthetic_trace) == 0

    def test_by_protocol_validation(self):
        with pytest.raises(ValueError):
            by_protocol(300)


class TestComposition:
    def test_and(self, synthetic_trace):
        combined = inbound() & by_time(0.0, 0.35)
        # inbound at 0.0, 0.1, 0.2, 0.3
        assert combined.count(synthetic_trace) == 4

    def test_or(self, synthetic_trace):
        combined = by_payload_size(130, 130) | by_time(0.0, 0.05)
        # 5 outbound (130 B) + the inbound packet at t=0.0
        assert combined.count(synthetic_trace) == 6

    def test_not(self, synthetic_trace):
        assert (~inbound()).count(synthetic_trace) == 5

    def test_description_composes(self):
        combined = ~(inbound() & by_port(27015))
        assert "direction=IN" in combined.description
        assert "port=27015" in combined.description
        assert combined.description.startswith("(not")

    def test_apply_returns_trace(self, synthetic_trace):
        selected = (inbound() | outbound()).apply(synthetic_trace)
        assert len(selected) == len(synthetic_trace)

    def test_de_morgan(self, synthetic_trace):
        left = ~(inbound() | small_packets(100))
        right = (~inbound()) & (~small_packets(100))
        assert np.array_equal(
            left.mask(synthetic_trace), right.mask(synthetic_trace)
        )
