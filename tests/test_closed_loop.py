"""Unit and integration tests for the closed-loop simulation."""

import numpy as np
import pytest

from repro.gameserver.client import ClientState, GameClient
from repro.gameserver.config import olygamer_week, quick_test_profile
from repro.gameserver.network import (
    ClientPath,
    DEFAULT_PATHS,
    PathProfile,
    path_for_class,
)
from repro.gameserver.server import GameServer, run_closed_loop
from repro.router.device import DeviceProfile
from repro.router.livedevice import LiveForwardingDevice
from repro.sim.engine import EventScheduler
from repro.trace.packet import Direction


class TestPathModels:
    def test_sample_delay_near_latency(self, rng):
        path = PathProfile(latency=0.1, jitter=0.01)
        delays = np.asarray([path.sample_delay(rng) for _ in range(2000)])
        assert delays.mean() == pytest.approx(0.1, abs=0.005)
        assert delays.min() >= 0.05

    def test_zero_jitter_deterministic(self, rng):
        path = PathProfile(latency=0.05)
        assert path.sample_delay(rng) == 0.05

    def test_loss_rate(self, rng):
        path = PathProfile(latency=0.05, loss_rate=0.2)
        losses = sum(path.sample_loss(rng) for _ in range(5000))
        assert losses / 5000 == pytest.approx(0.2, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            PathProfile(latency=-1.0)
        with pytest.raises(ValueError):
            PathProfile(latency=0.1, jitter=-0.1)
        with pytest.raises(ValueError):
            PathProfile(latency=0.1, loss_rate=1.0)

    def test_catalogue(self):
        assert path_for_class("modem") is DEFAULT_PATHS["modem"]
        assert path_for_class("unknown") is DEFAULT_PATHS["modem"]
        modem = path_for_class("modem")
        fast = path_for_class("l337")
        assert modem.uplink.latency > fast.uplink.latency

    def test_symmetric_constructor(self):
        path = ClientPath.symmetric(latency=0.02, jitter=0.001)
        assert path.uplink == path.downlink


class TestCleanLoop:
    @pytest.fixture(scope="class")
    def clean(self):
        return run_closed_loop(
            olygamer_week(), n_clients=8, duration=30.0, seed=4
        )

    def test_all_clients_connect(self, clean):
        assert clean["server"].player_count == 8
        assert all(c.connected for c in clean["clients"])

    def test_no_timeouts_or_freezes(self, clean):
        assert clean["server"].timeouts == 0
        assert clean["server"].freeze_seconds < 0.5

    def test_load_matches_rate_model(self, clean):
        profile = olygamer_week()
        trace = clean["trace"]
        pps = len(trace) / 30.0
        expected = 8 * (
            1.0 / profile.client_update_interval
            + profile.ticks_per_second * profile.snapshot_send_probability
        )
        assert pps == pytest.approx(expected, rel=0.15)

    def test_clients_receive_snapshots(self, clean):
        for client in clean["clients"]:
            assert client.snapshots_received > 100
            assert client.updates_sent > 100

    def test_trace_has_handshakes(self, clean):
        trace = clean["trace"]
        assert len(trace.inbound()) > 0
        assert len(trace.outbound()) > 0

    def test_reproducible(self):
        a = run_closed_loop(quick_test_profile(), 4, 20.0, seed=9)
        b = run_closed_loop(quick_test_profile(), 4, 20.0, seed=9)
        assert len(a["trace"]) == len(b["trace"])
        assert np.allclose(a["trace"].timestamps, b["trace"].timestamps)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_closed_loop(quick_test_profile(), 0, 10.0)
        with pytest.raises(ValueError):
            run_closed_loop(quick_test_profile(), 4, 0.0)


class TestClientStateMachine:
    def test_double_connect_rejected(self):
        scheduler = EventScheduler()
        server = GameServer(quick_test_profile(), scheduler, seed=1)
        client = GameClient(
            0, scheduler, server, path_for_class("modem"),
            np.random.default_rng(0),
        )
        client.connect()
        with pytest.raises(RuntimeError):
            client.connect()
        server.stop()

    def test_refused_when_full(self):
        profile = quick_test_profile().replace(max_players=1)
        scheduler = EventScheduler()
        server = GameServer(profile, scheduler, seed=1)
        clients = [
            GameClient(i, scheduler, server, path_for_class("l337"),
                       np.random.default_rng(i))
            for i in range(2)
        ]
        for client in clients:
            client.connect()
        scheduler.run_until(2.0)
        states = [c.state for c in clients]
        assert states.count(ClientState.CONNECTED) == 1
        assert states.count(ClientState.DISCONNECTED) == 1
        server.stop()

    def test_voluntary_disconnect_frees_slot(self):
        profile = quick_test_profile().replace(max_players=1)
        scheduler = EventScheduler()
        server = GameServer(profile, scheduler, seed=1)
        first = GameClient(0, scheduler, server, path_for_class("l337"),
                           np.random.default_rng(0))
        first.connect()
        scheduler.run_until(1.0)
        assert server.player_count == 1
        first.disconnect()
        scheduler.run_until(2.0)
        assert server.player_count == 0
        second = GameClient(1, scheduler, server, path_for_class("l337"),
                            np.random.default_rng(1))
        second.connect()
        scheduler.run_until(3.0)
        assert second.connected
        server.stop()


class TestBehindDevice:
    def test_loss_asymmetry_emerges(self):
        profile = olygamer_week()

        def factory(scheduler):
            return LiveForwardingDevice(
                scheduler, DeviceProfile(), seed=13, horizon=130.0
            )

        result = run_closed_loop(
            profile, n_clients=20, duration=120.0, seed=13,
            transport_factory=factory,
        )
        stats = result["device"].stats
        assert stats.inbound_loss_rate > 0.0
        assert stats.inbound_loss_rate > stats.outbound_loss_rate
        assert stats.forwarded_in + stats.dropped_in == stats.offered_in
        assert stats.forwarded_out + stats.dropped_out == stats.offered_out

    def test_fast_device_is_transparent(self):
        profile = olygamer_week()

        def factory(scheduler):
            return LiveForwardingDevice(
                scheduler,
                DeviceProfile(
                    lookup_rate=50_000.0,
                    stall_interval_mean=1e9,
                ),
                seed=13,
                horizon=40.0,
            )

        result = run_closed_loop(
            profile, n_clients=10, duration=30.0, seed=13,
            transport_factory=factory,
        )
        stats = result["device"].stats
        assert stats.inbound_loss_rate == 0.0
        assert stats.outbound_loss_rate == 0.0
        assert result["server"].player_count == 10


class TestLiveDeviceUnit:
    def test_delivery_ordering(self):
        scheduler = EventScheduler()
        device = LiveForwardingDevice(
            scheduler,
            DeviceProfile(lookup_rate=100.0, service_cv=0.0,
                          stall_interval_mean=1e9),
            seed=1,
            horizon=100.0,
        )
        delivered = []
        for i in range(5):
            scheduler.schedule(
                0.001 * i,
                lambda i=i: device.submit(Direction.IN,
                                          lambda i=i: delivered.append(i)),
            )
        scheduler.run_until(1.0)
        assert delivered == [0, 1, 2, 3, 4]
        # FIFO service at 10 ms/packet: 5 packets take ~50 ms
        assert device.stats.forwarded_in == 5

    def test_queue_overflow_drops(self):
        scheduler = EventScheduler()
        device = LiveForwardingDevice(
            scheduler,
            DeviceProfile(lookup_rate=10.0, service_cv=0.0, wan_queue=2,
                          stall_interval_mean=1e9),
            seed=1,
            horizon=100.0,
        )
        outcomes = []
        for i in range(6):
            scheduler.schedule(
                1e-6 * i,
                lambda: outcomes.append(
                    device.submit(Direction.IN, lambda: None)
                ),
            )
        scheduler.run_until(10.0)
        assert outcomes.count(True) == 2
        assert device.stats.dropped_in == 4
