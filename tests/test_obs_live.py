"""Live monitoring: heartbeats, resource sampler, tails, watch, export.

The write side (``obs.progress`` + the sampler thread) must publish
while a session is active and vanish without one; the read side
(``tail_jsonl`` / ``WatchState``) must consume only appended bytes and
never a torn or duplicated record; the chrome-trace export must
round-trip every span exactly once onto its worker's track.
"""

import json
import threading
import time

import pytest

from repro import obs
from repro.obs.live import (
    PROGRESS_INTERVAL_S,
    JsonlTail,
    ProgressPublisher,
    StageStatus,
    WatchState,
    chrome_trace_events,
    current_rss_kb,
    export_chrome_trace,
    tail_jsonl,
)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    yield
    if obs.current_session() is not None:
        obs.end_trace_session()
    obs.trace.install_tracer(None)


class _ListWriter:
    """Stand-in stream writer capturing records in memory."""

    def __init__(self):
        self.rows = 0
        self.records = []

    def write(self, record):
        self.records.append(record)
        self.rows += 1


class TestProgressPublisher:
    def _publisher(self, interval=PROGRESS_INTERVAL_S):
        writer = _ListWriter()
        return ProgressPublisher(writer, time.perf_counter(), interval), writer

    def test_first_and_final_records_always_publish(self):
        publisher, writer = self._publisher(interval=3600.0)
        assert publisher.publish("stage", 1, 100)  # first: always
        assert not publisher.publish("stage", 2, 100)  # inside the window
        assert not publisher.publish("stage", 50, 100)
        assert publisher.publish("stage", 100, 100)  # final: always
        assert [r["done"] for r in writer.records] == [1, 100]

    def test_rate_limit_passes_after_interval(self):
        publisher, writer = self._publisher(interval=0.01)
        publisher.publish("stage", 1, 10)
        time.sleep(0.02)
        assert publisher.publish("stage", 2, 10)
        record = writer.records[-1]
        assert record["rate"] is not None and record["rate"] > 0

    def test_stages_are_independent(self):
        publisher, writer = self._publisher(interval=3600.0)
        assert publisher.publish("a", 1, 10)
        assert publisher.publish("b", 1, 10)  # b's first record
        assert {r["stage"] for r in writer.records} == {"a", "b"}

    def test_increment_mode_counts_calls(self):
        publisher, writer = self._publisher(interval=0.0)
        publisher.publish("hops")
        publisher.publish("hops")
        publisher.publish("hops")
        assert [r["done"] for r in writer.records] == [1, 2, 3]
        assert all(r["total"] is None for r in writer.records)

    def test_restarted_stage_has_no_rate(self):
        # done going backwards (next policy reusing the stage) must not
        # produce a negative rate
        publisher, writer = self._publisher(interval=0.0)
        publisher.publish("stage", 50, 60)
        publisher.publish("stage", 1, 60)
        assert writer.records[-1]["rate"] is None

    def test_record_schema(self):
        publisher, writer = self._publisher()
        publisher.publish("stage", 1, 4, policy="least_loaded")
        record = writer.records[0]
        for key in (
            "stage", "done", "total", "rate", "unix", "wall_s", "interval_s",
        ):
            assert key in record
        assert record["policy"] == "least_loaded"
        # unix is a cross-process wall-clock stamp, not perf_counter
        assert record["unix"] == pytest.approx(time.time(), abs=60.0)

    def test_module_hook_is_noop_without_session(self):
        assert obs.current_session() is None
        assert obs.progress("anything", 1, 2) is False

    def test_module_hook_writes_through_session(self, tmp_path):
        obs.start_trace_session(tmp_path / "trace")
        assert obs.progress("stage", 1, 2) is True
        obs.end_trace_session()
        rows = obs.read_jsonl(tmp_path / "trace" / "progress.jsonl")
        assert rows[0]["stage"] == "stage"


class TestResourceSampler:
    def test_samples_land_in_resources_stream(self, tmp_path):
        session = obs.start_trace_session(
            tmp_path / "trace", sample_interval=0.01
        )
        deadline = time.time() + 5.0
        while (
            session._streams["resources"].rows < 3
            and time.time() < deadline
        ):
            time.sleep(0.01)
        with obs.span("busy"):
            time.sleep(0.02)
        obs.end_trace_session()

        rows = obs.read_jsonl(tmp_path / "trace" / "resources.jsonl")
        assert len(rows) >= 3
        for row in rows:
            assert row["interval_s"] == 0.01
            assert row["rss_kb"] > 0
            assert row["peak_rss_kb"] > 0
            assert row["cpu_s"] >= 0
            assert isinstance(row["open_span"], str)

    def test_sampler_stops_with_the_session(self, tmp_path):
        session = obs.start_trace_session(
            tmp_path / "trace", sample_interval=0.01
        )
        sampler = session._sampler
        assert sampler.is_alive()
        obs.end_trace_session()
        assert not sampler.is_alive()
        assert session._sampler is None

    def test_rollup_counts_heartbeats_and_samples(self, tmp_path):
        session = obs.start_trace_session(
            tmp_path / "trace", sample_interval=0.01
        )
        obs.progress("stage", 1, 1)
        time.sleep(0.05)
        obs.end_trace_session()
        assert session.rollup["heartbeats"] == 1
        assert session.rollup["resource_samples"] >= 1
        line = session.rollup_line()
        assert "1 heartbeats" in line
        assert "samples" in line
        manifest = obs.load_manifest(tmp_path / "trace")
        assert manifest["heartbeats"] == 1
        assert manifest["resource_samples"] >= 1
        assert manifest["artifacts"]["progress.jsonl"]["rows"] == 1

    def test_interval_validated(self, tmp_path):
        with pytest.raises(ValueError, match="interval"):
            obs.start_trace_session(tmp_path / "trace", sample_interval=0.0)
        # the failed start must not leak a half-open session
        assert obs.current_session() is None
        assert obs.current_tracer() is None

    def test_current_rss_positive(self):
        assert current_rss_kb() > 0


class TestJsonlTail:
    def test_missing_file_yields_nothing(self, tmp_path):
        tail = tail_jsonl(tmp_path / "absent.jsonl")
        assert tail.poll() == []

    def test_incremental_reads_never_rescan(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        tail = JsonlTail(path)
        with open(path, "w") as handle:
            handle.write('{"n": 1}\n')
        assert tail.poll() == [{"n": 1}]
        offset_after_first = tail.offset
        assert offset_after_first == len('{"n": 1}\n')
        with open(path, "a") as handle:
            handle.write('{"n": 2}\n{"n": 3}\n')
        assert tail.poll() == [{"n": 2}, {"n": 3}]
        assert tail.poll() == []  # nothing new: nothing re-read
        assert tail.records_read == 3

    def test_torn_tail_deferred_not_split(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        tail = JsonlTail(path)
        with open(path, "w") as handle:
            handle.write('{"n": 1}\n{"n": 2')  # second record torn
        assert tail.poll() == [{"n": 1}]
        with open(path, "a") as handle:
            handle.write('2}\n')  # the writer finishes the record
        assert tail.poll() == [{"n": 22}]

    def test_every_byte_offset_split(self, tmp_path):
        """Deliver the file in two arbitrary chunks: whatever the split,
        the tail yields exactly the full record sequence, in order."""
        records = [{"i": i, "payload": "x" * i} for i in range(12)]
        raw = "".join(json.dumps(r) + "\n" for r in records).encode()
        path = tmp_path / "stream.jsonl"
        for offset in range(len(raw) + 1):
            path.write_bytes(raw[:offset])
            tail = JsonlTail(path)
            first = tail.poll()
            path.write_bytes(raw)  # rest appended (prefix unchanged)
            second = tail.poll()
            assert first + second == records, f"offset {offset}"

    def test_corrupt_complete_line_skipped_once(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text('{"n": 1}\nnot json\n{"n": 2}\n')
        tail = JsonlTail(path)
        assert tail.poll() == [{"n": 1}, {"n": 2}]
        assert tail.poll() == []


class TestConcurrentTail:
    def test_writer_thread_vs_polling_reader(self, tmp_path):
        """A live writer appending while the main thread polls: the tail
        must deliver every record exactly once, in order, never torn."""
        path = tmp_path / "progress.jsonl"
        n_records = 400
        stop = threading.Event()

        def writer():
            with open(path, "w", encoding="utf-8") as handle:
                for index in range(n_records):
                    handle.write(
                        json.dumps({"i": index, "pad": "y" * (index % 37)})
                        + "\n"
                    )
                    handle.flush()
                    if index % 50 == 0:
                        time.sleep(0.001)
            stop.set()

        thread = threading.Thread(target=writer)
        tail = tail_jsonl(path)
        collected = []
        thread.start()
        try:
            while not stop.is_set() or True:
                collected.extend(tail.poll())
                if stop.is_set() and len(collected) >= n_records:
                    break
                time.sleep(0.0005)
        finally:
            thread.join()
        collected.extend(tail.poll())
        assert [r["i"] for r in collected] == list(range(n_records))


class TestWatchState:
    def _write(self, path, records):
        with open(path, "a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")

    def _progress(self, stage, done, total, unix, **extra):
        return {
            "stage": stage,
            "done": done,
            "total": total,
            "rate": None,
            "unix": unix,
            "wall_s": 0.0,
            "interval_s": PROGRESS_INTERVAL_S,
            **extra,
        }

    def test_poll_folds_stages_and_eta(self, tmp_path):
        now = 1000.0
        self._write(
            tmp_path / "progress.jsonl",
            [
                self._progress("epochs", 10, 60, now - 10.0),
                self._progress("epochs", 30, 60, now),
            ],
        )
        state = WatchState(tmp_path)
        assert state.poll() == 2
        status = state.stages["epochs"]
        assert status.done == 30 and status.total == 60
        # 20 units over 10 s -> 2/s -> 30 remaining / 2 = 15 s
        assert status.recent_rate() == pytest.approx(2.0)
        assert status.eta_s() == pytest.approx(15.0)
        rendered = state.render(now_unix=now)
        assert "epochs" in rendered
        assert "30/60" in rendered
        assert "15.0s" in rendered

    def test_no_full_file_rereads(self, tmp_path):
        self._write(
            tmp_path / "progress.jsonl",
            [self._progress("s", 1, 4, 1.0)],
        )
        state = WatchState(tmp_path)
        state.poll()
        offset = state.progress_tail.offset
        self._write(
            tmp_path / "progress.jsonl",
            [self._progress("s", 2, 4, 2.0)],
        )
        state.poll()
        assert state.progress_tail.offset > offset  # advanced, not reset
        assert state.stages["s"].done == 2
        assert state.heartbeats == 2

    def test_finished_when_manifest_lands(self, tmp_path):
        state = WatchState(tmp_path)
        assert not state.finished()
        (tmp_path / "manifest.json").write_text("{}")
        assert state.finished()

    def test_stall_from_stale_resources(self, tmp_path):
        now = 5000.0
        self._write(
            tmp_path / "resources.jsonl",
            [{"unix": now - 100.0, "interval_s": 1.0, "rss_kb": 1.0,
              "peak_rss_kb": 1.0, "cpu_s": 0.0, "open_span": ""}],
        )
        state = WatchState(tmp_path)
        state.poll()
        # 100 s old vs a budget of 10 x 1 s -> stalled
        stall = state.stall(now_unix=now)
        assert stall is not None and "resource sample" in stall
        # a fresh sample is alive
        assert state.stall(now_unix=now - 95.0) is None
        # manifest present -> finished runs never stall
        (tmp_path / "manifest.json").write_text("{}")
        assert state.stall(now_unix=now) is None

    def test_stall_from_heartbeats_without_sampler(self, tmp_path):
        now = 5000.0
        self._write(
            tmp_path / "progress.jsonl",
            [self._progress("s", 1, 10, now - 120.0)],
        )
        state = WatchState(tmp_path)
        state.poll()
        assert state.stall(now_unix=now) is not None
        # all stages complete -> silence is expected, not a stall
        self._write(
            tmp_path / "progress.jsonl",
            [self._progress("s", 10, 10, now - 119.0)],
        )
        state.poll()
        assert state.stall(now_unix=now) is None

    def test_stall_after_overrides_budget(self, tmp_path):
        now = 5000.0
        self._write(
            tmp_path / "resources.jsonl",
            [{"unix": now - 5.0, "interval_s": 1.0, "rss_kb": 1.0,
              "peak_rss_kb": 1.0, "cpu_s": 0.0, "open_span": ""}],
        )
        state = WatchState(tmp_path)
        state.poll()
        assert state.stall(now_unix=now) is None  # inside 10 x 1 s
        assert state.stall(now_unix=now, stall_after=2.0) is not None

    def test_empty_directory_is_waiting_not_stalled(self, tmp_path):
        state = WatchState(tmp_path)
        state.poll()
        assert state.stall(now_unix=1e9) is None
        assert "waiting" in state.render(now_unix=1e9)

    def test_restarted_stage_clears_rate_window(self):
        status = StageStatus("s")
        status.absorb({"done": 50, "total": 60, "unix": 1.0})
        status.absorb({"done": 60, "total": 60, "unix": 2.0})
        status.absorb({"done": 1, "total": 60, "unix": 3.0})  # restart
        assert len(status.window) == 1
        assert status.recent_rate() is None


class TestChromeTraceExport:
    def test_events_round_trip_span_records(self):
        records = [
            {"id": 0, "parent": None, "name": "run", "path": "run",
             "depth": 0, "start_s": 0.0, "wall_s": 2.0, "peak_rss_kb": 1.0},
            {"id": 1, "parent": 0, "name": "phase", "path": "run/phase",
             "depth": 1, "start_s": 0.5, "wall_s": 1.0, "peak_rss_kb": 1.0,
             "attrs": {"k": "v"}, "counters": {"n": 3}},
            {"id": 2, "parent": 0, "name": "fleet.worker_task",
             "path": "run/fleet.worker_task", "depth": 1, "start_s": 0.6,
             "wall_s": 0.5, "peak_rss_kb": 1.0, "worker_pid": 4242,
             "task_index": 7},
        ]
        events = chrome_trace_events(records)
        spans = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(spans) == len(records)

        assert spans[0]["tid"] == 0 and spans[1]["tid"] == 0
        assert spans[2]["tid"] == 4242
        assert spans[1]["ts"] == pytest.approx(0.5e6)
        assert spans[1]["dur"] == pytest.approx(1.0e6)
        assert spans[1]["args"]["attrs"] == {"k": "v"}
        assert spans[1]["args"]["counters"] == {"n": 3}
        assert spans[2]["args"]["task_index"] == 7

        names = {
            (e["tid"], e["args"]["name"])
            for e in meta
            if e["name"] == "thread_name"
        }
        assert (0, "main") in names
        assert (4242, "worker 4242") in names

    def test_export_of_sharded_run(self, tmp_path):
        """Acceptance: a --workers 4 run round-trips — every span in
        spans.jsonl appears exactly once, with matching duration, on its
        worker's track."""
        from repro.fleet.profiles import hosting_facility
        from repro.fleet.scenario import FleetScenario

        root = tmp_path / "trace"
        obs.start_trace_session(root, seed=5)
        try:
            fleet = hosting_facility(n_servers=4, duration=1800.0, seed=5)
            FleetScenario(fleet).aggregate_per_second(workers=4)
        finally:
            obs.end_trace_session()

        document = export_chrome_trace(root)
        spans = obs.read_jsonl(root / "spans.jsonl")
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(events) == len(spans)
        by_id = {e["args"]["span_id"]: e for e in events}
        assert len(by_id) == len(spans)  # each span exactly once
        worker_pids = set()
        for record in spans:
            event = by_id[record["id"]]
            assert event["name"] == record["name"]
            assert event["dur"] == pytest.approx(record["wall_s"] * 1e6)
            expected_tid = record.get("worker_pid", 0) or 0
            assert event["tid"] == expected_tid
            if record.get("worker_pid") is not None:
                worker_pids.add(record["worker_pid"])
        assert worker_pids  # sharded run: worker tracks exist
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        for pid in worker_pids:
            assert thread_names[pid] == f"worker {pid}"
        json.dumps(document)  # the document itself must be JSON-safe
