"""Unit tests for the pps-bound forwarding engine."""

import numpy as np
import pytest

from repro.net.addresses import IPv4Address
from repro.router.device import DeviceProfile, ForwardingEngine
from repro.trace.packet import Direction
from repro.trace.trace import Trace, TraceBuilder

SERVER = IPv4Address("10.0.0.2")
CLIENT = IPv4Address("24.0.0.1")


def make_stream(in_rate=100.0, out_burst=0, duration=10.0, seed=0):
    """Poisson inbound plus optional per-50ms outbound bursts."""
    rng = np.random.default_rng(seed)
    builder = TraceBuilder(server_address=SERVER)
    t = 0.0
    while t < duration:
        t += float(rng.exponential(1.0 / in_rate))
        if t >= duration:
            break
        builder.add(t, Direction.IN, CLIENT.value, SERVER.value, 1000, 27015, 40)
    if out_burst:
        for tick in np.arange(0.05, duration, 0.05):
            for j in range(out_burst):
                builder.add(tick + j * 1e-4, Direction.OUT, SERVER.value,
                            CLIENT.value, 27015, 1000, 130)
    return builder.build()


def quiet_profile(**overrides):
    """A device profile with stalls and freezes disabled by default."""
    params = dict(
        stall_interval_mean=1e9,
        freeze_threshold=10**6,
        service_cv=0.0,
    )
    params.update(overrides)
    return DeviceProfile(**params)


class TestConservation:
    def test_every_packet_accounted(self):
        trace = make_stream(in_rate=200.0, out_burst=5)
        result = ForwardingEngine(quiet_profile(), seed=1).process(trace)
        fates = result.fates
        assert fates.size == len(trace)
        assert np.all(np.isin(fates, [-1, 0, 1]))
        forwarded = int((fates == 1).sum())
        dropped = int((fates == 0).sum())
        suppressed = int((fates == -1).sum())
        assert forwarded + dropped + suppressed == len(trace)

    def test_no_loss_under_light_load(self):
        trace = make_stream(in_rate=100.0, out_burst=3)
        result = ForwardingEngine(quiet_profile(), seed=1).process(trace)
        assert result.inbound_loss_rate == 0.0
        assert result.outbound_loss_rate == 0.0

    def test_departures_after_arrivals(self):
        trace = make_stream(in_rate=300.0, out_burst=8)
        result = ForwardingEngine(quiet_profile(), seed=1).process(trace)
        mask = result.forwarded_mask()
        assert np.all(result.departures[mask] >= result.timestamps[mask])

    def test_fifo_departures_monotone(self):
        trace = make_stream(in_rate=300.0, out_burst=8)
        result = ForwardingEngine(quiet_profile(), seed=1).process(trace)
        departures = result.departures[result.forwarded_mask()]
        assert np.all(np.diff(departures) >= -1e-12)

    def test_empty_trace(self):
        result = ForwardingEngine(quiet_profile(), seed=1).process(
            Trace.empty(server_address=SERVER)
        )
        assert result.fates.size == 0
        assert result.inbound_loss_rate == 0.0


class TestOverload:
    def test_sustained_overload_drops(self):
        # 2000 pps inbound against a 1250 pps engine must shed ~37%
        trace = make_stream(in_rate=2000.0, duration=20.0)
        result = ForwardingEngine(quiet_profile(), seed=2).process(trace)
        assert result.inbound_loss_rate == pytest.approx(0.37, abs=0.12)

    def test_forwarded_rate_capped_at_capacity(self):
        trace = make_stream(in_rate=3000.0, duration=20.0)
        profile = quiet_profile()
        result = ForwardingEngine(profile, seed=2).process(trace)
        duration = float(trace.timestamps[-1] - trace.timestamps[0])
        forwarded_rate = result.inbound_forwarded / duration
        assert forwarded_rate <= profile.lookup_rate * 1.05

    def test_bigger_queue_less_loss(self):
        trace = make_stream(in_rate=1400.0, duration=20.0)
        small = ForwardingEngine(quiet_profile(wan_queue=2), seed=3).process(trace)
        large = ForwardingEngine(quiet_profile(wan_queue=50), seed=3).process(trace)
        assert large.inbound_loss_rate <= small.inbound_loss_rate

    def test_outbound_burst_overflow(self):
        # bursts of 30 against a LAN queue of 19 must drop part of each burst
        trace = make_stream(in_rate=10.0, out_burst=30, duration=10.0)
        result = ForwardingEngine(quiet_profile(), seed=4).process(trace)
        assert result.outbound_loss_rate > 0.05


class TestStallsAndFreezes:
    def test_stalls_cause_inbound_loss(self):
        trace = make_stream(in_rate=400.0, duration=30.0)
        profile = quiet_profile(
            stall_interval_mean=5.0, stall_duration_mean=0.3
        )
        result = ForwardingEngine(profile, seed=5).process(trace)
        assert len(result.stall_windows) > 0
        assert result.inbound_loss_rate > 0.0

    def test_freeze_suppresses_outbound(self):
        trace = make_stream(in_rate=400.0, out_burst=8, duration=30.0)
        profile = quiet_profile(
            stall_interval_mean=5.0,
            stall_duration_mean=0.3,
            freeze_threshold=5,
        )
        result = ForwardingEngine(profile, seed=6).process(trace)
        assert len(result.freeze_windows) > 0
        assert result.suppressed_count > 0

    def test_suppressed_not_counted_as_offered(self):
        trace = make_stream(in_rate=400.0, out_burst=8, duration=30.0)
        profile = quiet_profile(
            stall_interval_mean=5.0, stall_duration_mean=0.3, freeze_threshold=5
        )
        result = ForwardingEngine(profile, seed=6).process(trace)
        out_total = int((result.directions == 1).sum())
        assert result.outbound_offered == out_total - result.suppressed_count

    def test_delays_positive(self):
        trace = make_stream(in_rate=500.0, out_burst=10, duration=10.0)
        result = ForwardingEngine(quiet_profile(), seed=7).process(trace)
        delays = result.delays()
        assert delays.min() > 0.0


class TestDeviceProfileValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lookup_rate": 0.0},
            {"wan_queue": 0},
            {"lan_queue": 0},
            {"service_cv": -1.0},
            {"freeze_threshold": 0},
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            DeviceProfile(**kwargs)
