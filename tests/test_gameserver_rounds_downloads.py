"""Unit tests for the round schedule and download rate limiting."""

import numpy as np
import pytest

from repro.gameserver.config import olygamer_week, quick_test_profile
from repro.gameserver.downloads import DownloadScheduler, TokenBucket
from repro.gameserver.rounds import RoundSchedule


class TestRoundSchedule:
    def test_rounds_tile_maps(self, quick_profile):
        schedule = RoundSchedule(quick_profile, seed=1)
        for a, b in zip(schedule.rounds, schedule.rounds[1:]):
            assert b.start >= a.end - 1e-9

    def test_rounds_respect_horizon(self, quick_profile):
        schedule = RoundSchedule(quick_profile, seed=1)
        assert schedule.rounds[-1].end <= quick_profile.duration + 1e-9

    def test_several_minute_rounds(self):
        profile = olygamer_week().scaled(7200.0)
        schedule = RoundSchedule(profile, seed=2)
        durations = [r.duration for r in schedule.rounds if r.duration > 44.0]
        assert 60.0 < np.mean(durations) < 400.0

    def test_over_ten_rounds_per_map(self):
        profile = olygamer_week().scaled(2 * 1800.0)
        schedule = RoundSchedule(profile, seed=3)
        # paper: "allowing for over 10 rounds to be played per map"
        assert schedule.rounds_per_map() >= 5.0

    def test_round_at(self, quick_profile):
        schedule = RoundSchedule(quick_profile, seed=1)
        record = schedule.round_at(10.0)
        assert record.start <= 10.0 < record.end

    def test_round_at_outside_raises(self, quick_profile):
        schedule = RoundSchedule(quick_profile, seed=1)
        with pytest.raises(ValueError):
            schedule.round_at(quick_profile.duration + 100.0)

    def test_intensity_ramps_within_round(self, quick_profile):
        schedule = RoundSchedule(quick_profile, seed=1)
        record = schedule.rounds[0]
        early = schedule.intensity(np.asarray([record.start + 0.01 * record.duration]))
        late = schedule.intensity(np.asarray([record.start + 0.99 * record.duration]))
        assert late[0] > early[0]

    def test_intensity_bounded(self, quick_profile):
        schedule = RoundSchedule(quick_profile, seed=1)
        times = np.linspace(0, quick_profile.duration * 0.99, 500)
        intensity = schedule.intensity(times)
        amplitude = quick_profile.round_intensity_amplitude
        assert np.all(intensity >= 1.0 - amplitude - 1e-9)
        assert np.all(intensity <= 1.0 + amplitude + 1e-9)

    def test_zero_amplitude_flat(self):
        profile = quick_test_profile().replace(round_intensity_amplitude=0.0)
        schedule = RoundSchedule(profile, seed=1)
        intensity = schedule.intensity(np.linspace(0, 500, 100))
        assert np.allclose(intensity, 1.0)

    def test_boundaries_between(self, quick_profile):
        schedule = RoundSchedule(quick_profile, seed=1)
        boundaries = schedule.boundaries_between(0.0, quick_profile.duration)
        assert len(boundaries) == len(schedule.rounds)


class TestTokenBucket:
    def test_immediate_send_when_full(self):
        bucket = TokenBucket(rate=1000.0, capacity=5000.0)
        assert bucket.earliest_send(0.0, 1000.0) == 0.0

    def test_spacing_enforced_at_rate(self):
        bucket = TokenBucket(rate=1000.0, capacity=1000.0)
        bucket.consume(0.0, 1000.0)  # drain
        when = bucket.earliest_send(0.0, 500.0)
        assert when == pytest.approx(0.5)

    def test_refill_capped_at_capacity(self):
        bucket = TokenBucket(rate=1000.0, capacity=1000.0)
        bucket.consume(0.0, 1000.0)
        assert bucket.earliest_send(100.0, 1000.0) == 100.0  # fully refilled

    def test_oversized_chunk_rejected(self):
        bucket = TokenBucket(rate=100.0, capacity=100.0)
        with pytest.raises(ValueError):
            bucket.earliest_send(0.0, 500.0)

    def test_unaffordable_consume_rejected(self):
        bucket = TokenBucket(rate=100.0, capacity=100.0)
        bucket.consume(0.0, 100.0)
        with pytest.raises(ValueError):
            bucket.consume(0.0, 50.0)

    def test_time_going_backwards_rejected(self):
        bucket = TokenBucket(rate=100.0, capacity=100.0)
        bucket.consume(10.0, 1.0)
        with pytest.raises(ValueError):
            bucket.consume(5.0, 1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=10.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=10.0, capacity=0.0)


class TestDownloadScheduler:
    def test_transfer_rate_limited(self, rng):
        profile = olygamer_week()
        scheduler = DownloadScheduler(profile)
        transfer = scheduler.plan_transfer(rng, start=0.0)
        duration = transfer.end - transfer.start
        if duration > 0:
            observed_rate = transfer.total_bytes / max(duration, 1e-9)
            # long transfers must respect the configured server rate limit
            # (short ones ride the initial bucket burst)
            if transfer.total_bytes > profile.download_rate_limit:
                assert observed_rate <= profile.download_rate_limit * 1.5

    def test_chunk_sizes_bounded(self, rng):
        profile = olygamer_week()
        transfer = DownloadScheduler(profile).plan_transfer(rng, start=5.0)
        assert all(0 < s <= profile.download_chunk_payload for s in transfer.chunk_sizes)

    def test_chunks_nondecreasing_times(self, rng):
        transfer = DownloadScheduler(olygamer_week()).plan_transfer(rng, start=2.0)
        times = list(transfer.chunk_times)
        assert times == sorted(times)
        assert times[0] >= 2.0

    def test_concurrent_transfers_share_budget(self, rng):
        profile = olygamer_week()
        scheduler = DownloadScheduler(profile)
        first = scheduler.plan_transfer(rng, start=0.0)
        second = scheduler.plan_transfer(rng, start=0.0)
        # the second transfer must be pushed out by the first's consumption
        if first.total_bytes >= profile.download_rate_limit:
            assert second.end > first.start

    def test_acks_present_for_long_transfers(self, rng):
        profile = olygamer_week().replace(download_size_mean=50_000.0)
        transfer = DownloadScheduler(profile).plan_transfer(rng, start=0.0)
        assert len(transfer.ack_times) >= 1
        assert transfer.ack_size > 0
