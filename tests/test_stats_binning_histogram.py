"""Unit tests for time binning, histograms and CDFs."""

import numpy as np
import pytest

from repro.stats.binning import BinnedSeries, bin_events
from repro.stats.histogram import EmpiricalCDF, Histogram, histogram


class TestBinEvents:
    def test_counts_land_in_correct_bins(self):
        series = bin_events(np.asarray([0.05, 0.15, 0.16, 0.95]), 0.1, end_time=1.0)
        assert len(series) == 10
        assert series.counts[0] == 1
        assert series.counts[1] == 2
        assert series.counts[9] == 1

    def test_weights_summed(self):
        series = bin_events(
            np.asarray([0.05, 0.06]), 0.1, weights=np.asarray([10.0, 20.0]),
            end_time=0.2,
        )
        assert series.weights[0] == 30.0
        assert series.counts[0] == 2

    def test_rates_and_bandwidth(self):
        series = bin_events(
            np.asarray([0.0, 0.5]), 1.0, weights=np.asarray([100.0, 100.0]),
            end_time=1.0,
        )
        assert series.rates[0] == 2.0
        assert series.bandwidth_bps()[0] == pytest.approx(1600.0)

    def test_trailing_silence_produces_empty_bins(self):
        series = bin_events(np.asarray([0.05]), 0.1, end_time=1.0)
        assert len(series) == 10
        assert series.counts[1:].sum() == 0

    def test_events_outside_range_ignored(self):
        series = bin_events(
            np.asarray([-0.5, 0.05, 5.0]), 0.1, start_time=0.0, end_time=0.2
        )
        assert series.counts.sum() == 1

    def test_empty_input(self):
        series = bin_events(np.asarray([]), 0.1, end_time=1.0)
        assert len(series) == 10
        assert series.counts.sum() == 0

    def test_invalid_bin_size(self):
        with pytest.raises(ValueError):
            bin_events(np.asarray([0.0]), 0.0)

    def test_weights_length_mismatch(self):
        with pytest.raises(ValueError):
            bin_events(np.asarray([0.0, 1.0]), 0.1, weights=np.asarray([1.0]))

    def test_times_property(self):
        series = bin_events(np.asarray([0.0]), 0.5, start_time=10.0, end_time=12.0)
        assert series.times[0] == 10.0
        assert series.times[-1] == pytest.approx(11.5)


class TestRebin:
    def test_rebin_sums(self):
        series = bin_events(np.arange(0.05, 1.0, 0.1), 0.1, end_time=1.0)
        coarse = series.rebin(5)
        assert len(coarse) == 2
        assert coarse.counts[0] == 5
        assert coarse.bin_size == pytest.approx(0.5)

    def test_rebin_drops_remainder(self):
        series = BinnedSeries(1.0, 0.0, np.ones(7), np.ones(7))
        coarse = series.rebin(3)
        assert len(coarse) == 2
        assert coarse.counts.sum() == 6

    def test_rebin_factor_one_identity(self):
        series = BinnedSeries(1.0, 0.0, np.ones(4), np.ones(4))
        assert series.rebin(1) is series

    def test_rebin_invalid_factor(self):
        series = BinnedSeries(1.0, 0.0, np.ones(4), np.ones(4))
        with pytest.raises(ValueError):
            series.rebin(0)
        with pytest.raises(ValueError):
            series.rebin(10)


class TestHistogram:
    def test_probabilities_sum_to_in_range_fraction(self):
        samples = np.asarray([10.0, 20.0, 30.0, 600.0])
        hist = histogram(samples, 10.0, low=0.0, high=500.0)
        assert hist.probabilities.sum() == pytest.approx(0.75)
        assert hist.total_samples == 4

    def test_mode_bin(self):
        hist = histogram(np.asarray([15.0, 15.5, 40.0]), 10.0, high=50.0)
        center, probability = hist.mode_bin()
        assert center == pytest.approx(15.0)
        assert probability == pytest.approx(2.0 / 3.0)

    def test_mass_between(self):
        hist = histogram(np.asarray([5.0, 15.0, 25.0, 35.0]), 10.0, high=40.0)
        assert hist.mass_between(10.0, 30.0) == pytest.approx(0.5)

    def test_densities_integrate_to_mass(self):
        hist = histogram(np.asarray([1.0, 2.0, 3.0]), 1.0, high=5.0)
        assert (hist.densities * hist.bin_width).sum() == pytest.approx(1.0)

    def test_high_inferred_from_samples(self):
        hist = histogram(np.asarray([4.0, 95.0]), 10.0)
        assert hist.bin_edges[-1] >= 95.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            histogram(np.asarray([1.0]), 0.0)
        with pytest.raises(ValueError):
            histogram(np.asarray([1.0]), 1.0, low=5.0, high=5.0)
        with pytest.raises(ValueError):
            Histogram(np.asarray([0.0, 1.0]), np.asarray([1, 2]), 3)

    def test_cumulative_monotone(self):
        hist = histogram(np.random.default_rng(0).uniform(0, 100, 1000), 5.0,
                         high=100.0)
        cumulative = hist.cumulative()
        assert np.all(np.diff(cumulative) >= 0)
        assert cumulative[-1] == pytest.approx(1.0)


class TestEmpiricalCDF:
    def test_evaluation(self):
        cdf = EmpiricalCDF.from_samples(np.asarray([1.0, 2.0, 3.0, 4.0]))
        assert cdf(0.5) == 0.0
        assert cdf(2.0) == pytest.approx(0.5)
        assert cdf(10.0) == 1.0

    def test_vectorised_evaluation(self):
        cdf = EmpiricalCDF.from_samples(np.asarray([1.0, 2.0]))
        values = cdf(np.asarray([0.0, 1.5, 3.0]))
        assert list(values) == pytest.approx([0.0, 0.5, 1.0])

    def test_quantile_inverts(self):
        samples = np.random.default_rng(1).normal(size=1001)
        cdf = EmpiricalCDF.from_samples(samples)
        assert cdf.quantile(0.5) == pytest.approx(np.median(samples), abs=1e-9)

    def test_quantile_bounds(self):
        cdf = EmpiricalCDF.from_samples(np.asarray([5.0]))
        with pytest.raises(ValueError):
            cdf.quantile(0.0)
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_samples(np.asarray([]))

    def test_median_property(self):
        cdf = EmpiricalCDF.from_samples(np.asarray([1.0, 2.0, 3.0]))
        assert cdf.median == 2.0
