"""Unit tests for the game log generator/parser."""

import io

import pytest

from repro.gameserver.gamelog import (
    LogSummary,
    crosscheck_population,
    generate_log,
    parse_log,
    write_log,
)
from repro.gameserver.rounds import RoundSchedule


class TestGeneration:
    def test_lines_time_sorted(self, quick_population):
        lines = generate_log(quick_population)
        times = [float(line.split(":")[0][2:]) for line in lines]
        assert times == sorted(times)

    def test_connect_disconnect_pairing(self, quick_population):
        lines = generate_log(quick_population)
        connects = sum(1 for line in lines if " connect " in line)
        disconnects = sum(1 for line in lines if " disconnect " in line)
        assert connects == quick_population.established_count
        assert disconnects == quick_population.established_count

    def test_refused_lines(self, quick_population):
        lines = generate_log(quick_population)
        refused = sum(1 for line in lines if " refused " in line)
        assert refused == quick_population.refused_count

    def test_map_lines(self, quick_population):
        lines = generate_log(quick_population)
        starts = sum(1 for line in lines if "map_start" in line)
        ends = sum(1 for line in lines if "map_end" in line)
        assert starts == quick_population.maps_played
        assert ends == quick_population.maps_played

    def test_round_lines_present_with_schedule(
        self, quick_population, quick_profile
    ):
        rounds = RoundSchedule(quick_profile, seed=11)
        lines = generate_log(quick_population, rounds=rounds)
        round_ends = sum(1 for line in lines if "round_end" in line)
        assert round_ends == len(rounds)


class TestRoundTrip:
    def test_parse_recovers_events(self, quick_population):
        events = parse_log(generate_log(quick_population))
        connects = [e for e in events if e.event == "connect"]
        assert len(connects) == quick_population.established_count
        assert all(e.client_id is not None for e in connects)

    def test_write_and_reparse(self, quick_population, tmp_path):
        path = str(tmp_path / "server.log")
        count = write_log(quick_population, path)
        with open(path) as handle:
            events = parse_log(handle)
        assert len(events) == count

    def test_write_to_stream(self, quick_population):
        stream = io.StringIO()
        count = write_log(quick_population, stream)
        assert count == len(stream.getvalue().strip().splitlines())

    def test_unparseable_line_raises(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_log(["garbage line"])

    def test_blank_lines_skipped(self):
        assert parse_log(["", "   "]) == []

    def test_map_names_parsed(self, quick_population):
        events = parse_log(generate_log(quick_population))
        starts = [e for e in events if e.event == "map_start"]
        assert all(e.map_name for e in starts)


class TestCrossCheck:
    def test_summary_matches_population(self, quick_population):
        events = parse_log(generate_log(quick_population))
        summary = LogSummary.from_events(events)
        assert crosscheck_population(summary, quick_population)

    def test_mean_session_duration_recovered(self, quick_population):
        events = parse_log(generate_log(quick_population))
        summary = LogSummary.from_events(events)
        assert summary.mean_session_seconds == pytest.approx(
            quick_population.mean_session_duration(), rel=0.01
        )

    def test_tampered_log_fails_crosscheck(self, quick_population):
        lines = generate_log(quick_population)
        # drop one connect line
        index = next(i for i, line in enumerate(lines) if " connect " in line)
        events = parse_log(lines[:index] + lines[index + 1 :])
        summary = LogSummary.from_events(events)
        assert not crosscheck_population(summary, quick_population)
