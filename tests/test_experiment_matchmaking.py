"""End-to-end tests of the matchmaking experiment and its CLI plumbing."""

import numpy as np
import pytest

from repro.experiments import matchmaking
from repro.matchmaking import POLICIES


@pytest.fixture(scope="module")
def output():
    return matchmaking.run(seed=0)


class TestMatchmakingExperiment:
    def test_all_rows_pass(self, output):
        assert output.passed, output.render()

    def test_all_policies_compared(self, output):
        assert set(output.extras["results"]) == set(POLICIES)
        assert set(output.extras["envelopes"]) == set(POLICIES)

    def test_identical_demand_process(self, output):
        # one pool config drives every policy
        configs = [r.config for r in output.extras["results"].values()]
        assert all(config == configs[0] for config in configs)

    def test_load_aware_beats_blind_placement(self, output):
        results = output.extras["results"]
        assert (
            results["least_loaded"].rejection_rate
            < results["random"].rejection_rate
        )
        stats = output.extras["occupancy_stats"]
        assert stats["least_loaded"].utilization > stats["random"].utilization

    def test_notes_report_policy_deltas(self, output):
        text = output.render()
        for name in POLICIES:
            assert name in text
        assert "gain-vs-random" in text

    def test_policy_override_narrows_the_run(self):
        matchmaking.set_default_policy("least_loaded")
        try:
            narrowed = matchmaking.run(seed=0)
        finally:
            matchmaking.set_default_policy(None)
        assert set(narrowed.extras["results"]) == {"least_loaded"}
        assert narrowed.passed, narrowed.render()

    def test_pool_size_override(self):
        matchmaking.set_default_policy("random")
        matchmaking.set_default_pool_size(200)
        try:
            small = matchmaking.run(seed=0)
        finally:
            matchmaking.set_default_policy(None)
            matchmaking.set_default_pool_size(None)
        assert small.extras["config"].pool_size == 200

    def test_bad_overrides_rejected(self):
        with pytest.raises(KeyError):
            matchmaking.set_default_policy("nonexistent")
        with pytest.raises(ValueError):
            matchmaking.set_default_pool_size(0)

    def test_deterministic_across_runs(self, output):
        again = matchmaking.run(seed=0)
        a = output.extras["aggregates"]["least_loaded"]
        b = again.extras["aggregates"]["least_loaded"]
        assert all(
            np.array_equal(getattr(a, name), getattr(b, name))
            for name in ("in_counts", "out_counts", "in_bytes", "out_bytes")
        )
