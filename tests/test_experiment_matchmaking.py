"""End-to-end tests of the matchmaking experiment and its CLI plumbing."""

import numpy as np
import pytest

from repro.experiments import matchmaking
from repro.matchmaking import POLICIES


@pytest.fixture(scope="module")
def output():
    return matchmaking.run(seed=0)


class TestMatchmakingExperiment:
    def test_all_rows_pass(self, output):
        assert output.passed, output.render()

    def test_all_policies_compared(self, output):
        assert set(output.extras["results"]) == set(POLICIES)
        assert set(output.extras["envelopes"]) == set(POLICIES)

    def test_identical_demand_process(self, output):
        # one pool config drives every policy
        configs = [r.config for r in output.extras["results"].values()]
        assert all(config == configs[0] for config in configs)

    def test_load_aware_beats_blind_placement(self, output):
        results = output.extras["results"]
        assert (
            results["least_loaded"].rejection_rate
            < results["random"].rejection_rate
        )
        stats = output.extras["occupancy_stats"]
        assert stats["least_loaded"].utilization > stats["random"].utilization

    def test_notes_report_policy_deltas(self, output):
        text = output.render()
        for name in POLICIES:
            assert name in text
        assert "gain-vs-random" in text
        assert "rtt ms" in text
        assert "occupancy-vs-RTT frontier" in text

    def test_latency_aware_beats_least_loaded_on_rtt(self, output):
        # the acceptance criterion of the latency-aware sweep: strictly
        # lower mean session RTT at a few points of utilization at most
        latencies = output.extras["latency_stats"]
        stats = output.extras["occupancy_stats"]
        assert (
            latencies["latency_aware"].mean_ms
            < latencies["least_loaded"].mean_ms
        )
        assert (
            stats["latency_aware"].utilization
            >= stats["least_loaded"].utilization - 0.05
        )

    def test_frontier_holds_a_latency_aware_policy(self, output):
        frontier = output.extras["frontier"]
        assert frontier
        # every frontier member is a swept policy, and at least one of
        # the RTT-aware policies earns a place on it
        assert set(frontier) <= set(POLICIES)
        assert {"latency_aware", "lowest_rtt"} & set(frontier)

    def test_one_rtt_geometry_for_the_whole_sweep(self, output):
        rtt = output.extras["rtt"]
        for result in output.extras["results"].values():
            assert result.rtt is rtt

    def test_policy_override_narrows_the_run(self):
        matchmaking.set_default_policy("least_loaded")
        try:
            narrowed = matchmaking.run(seed=0)
        finally:
            matchmaking.set_default_policy(None)
        assert set(narrowed.extras["results"]) == {"least_loaded"}
        assert narrowed.passed, narrowed.render()

    def test_pool_size_override(self):
        matchmaking.set_default_policy("random")
        matchmaking.set_default_pool_size(200)
        try:
            small = matchmaking.run(seed=0)
        finally:
            matchmaking.set_default_policy(None)
            matchmaking.set_default_pool_size(None)
        assert small.extras["config"].pool_size == 200

    def test_bad_overrides_rejected(self):
        with pytest.raises(KeyError):
            matchmaking.set_default_policy("nonexistent")
        with pytest.raises(ValueError):
            matchmaking.set_default_pool_size(0)
        with pytest.raises(KeyError):
            matchmaking.set_default_rtt_profile("atlantis")
        with pytest.raises(ValueError):
            matchmaking.set_default_alpha(-1.0)
        with pytest.raises(ValueError):
            matchmaking.set_default_beta(float("nan"))

    def test_degenerate_latency_settings_still_pass(self):
        # --beta 0 and --rtt-profile uniform are documented parity
        # regimes (latency_aware == least_loaded), so the experiment
        # must relax its strict-RTT row rather than report failure
        matchmaking.set_default_beta(0.0)
        try:
            flat_beta = matchmaking.run(seed=0)
        finally:
            matchmaking.set_default_beta(None)
        assert flat_beta.passed, flat_beta.render()
        assert "latency term disabled" in flat_beta.render()
        latencies = flat_beta.extras["latency_stats"]
        assert (
            latencies["latency_aware"].mean_ms
            == latencies["least_loaded"].mean_ms
        )

    def test_all_zero_weights_still_pass(self):
        # alpha = beta = 0 makes the score constant (lowest-open-index
        # placement) — no RTT parity to claim, but still a valid run
        matchmaking.set_default_alpha(0.0)
        matchmaking.set_default_beta(0.0)
        try:
            degenerate = matchmaking.run(seed=0)
        finally:
            matchmaking.set_default_alpha(None)
            matchmaking.set_default_beta(None)
        assert degenerate.passed, degenerate.render()
        text = degenerate.render()
        assert "lowers mean session RTT" not in text
        assert "latency term disabled" not in text

    def test_rtt_profile_override_swaps_geometry(self):
        matchmaking.set_default_policy("lowest_rtt")
        matchmaking.set_default_rtt_profile("uniform")
        try:
            flat = matchmaking.run(seed=0)
        finally:
            matchmaking.set_default_policy(None)
            matchmaking.set_default_rtt_profile(None)
        assert flat.extras["rtt"].is_uniform
        assert flat.passed, flat.render()

    def test_weight_overrides_reach_the_policy(self):
        matchmaking.set_default_policy("latency_aware")
        matchmaking.set_default_alpha(2.0)
        matchmaking.set_default_beta(0.25)
        try:
            policy = matchmaking._latency_aware_policy()
        finally:
            matchmaking.set_default_policy(None)
            matchmaking.set_default_alpha(None)
            matchmaking.set_default_beta(None)
        assert policy.alpha == 2.0
        assert policy.beta == 0.25

    def test_deterministic_across_runs(self, output):
        again = matchmaking.run(seed=0)
        a = output.extras["aggregates"]["least_loaded"]
        b = again.extras["aggregates"]["least_loaded"]
        assert all(
            np.array_equal(getattr(a, name), getattr(b, name))
            for name in ("in_counts", "out_counts", "in_bytes", "out_bytes")
        )
