"""Property-based invariants of the server-selection policies.

The matchmaker trusts its policies to respect a few contracts no matter
what occupancy snapshot they see: admission-control policies
(``capacity_aware``, ``latency_aware``, ``lowest_rtt``) never hand back
a full server, ``sticky`` always honours a previous server with room,
``lowest_rtt`` really is an argmin over the reachable servers, and every
policy is a *pure* function of ``(occupancy, capacities, last_server,
rtt, rng state)`` — no hidden state, no input mutation.  Hypothesis
drives these over arbitrary facilities so a future policy refactor
cannot quietly weaken the slot-table or determinism guarantees.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.matchmaking import POLICIES, make_policy
from repro.matchmaking.policies import (
    CapacityAwarePolicy,
    LatencyAwarePolicy,
    LowestRttPolicy,
    StickyPolicy,
)


@st.composite
def facility_snapshots(draw):
    """An arbitrary ``(occupancy, capacities, last_server, rtt)`` state."""
    n_servers = draw(st.integers(min_value=1, max_value=8))
    capacities = np.asarray(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=32),
                min_size=n_servers,
                max_size=n_servers,
            )
        ),
        dtype=np.int64,
    )
    occupancy = np.asarray(
        [
            draw(st.integers(min_value=0, max_value=int(cap)))
            for cap in capacities
        ],
        dtype=np.int64,
    )
    last_server = draw(st.integers(min_value=-1, max_value=n_servers - 1))
    rtt = np.asarray(
        draw(
            st.lists(
                st.floats(
                    min_value=0.5,
                    max_value=500.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=n_servers,
                max_size=n_servers,
            )
        ),
        dtype=float,
    )
    return occupancy, capacities, last_server, rtt


class TestAdmissionControlNeverOverfills:
    @pytest.mark.parametrize(
        "policy_factory",
        [CapacityAwarePolicy, LatencyAwarePolicy, LowestRttPolicy],
        ids=["capacity_aware", "latency_aware", "lowest_rtt"],
    )
    @given(snapshot=facility_snapshots(), seed=st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_never_selects_a_full_server(self, policy_factory, snapshot, seed):
        occupancy, capacities, last_server, rtt = snapshot
        rng = np.random.default_rng(seed)
        chosen = policy_factory().select(
            occupancy, capacities, last_server, rng, rtt=rtt
        )
        if np.all(occupancy >= capacities):
            assert chosen is None
        else:
            assert chosen is not None
            assert occupancy[chosen] < capacities[chosen]

    @given(
        snapshot=facility_snapshots(),
        alpha=st.floats(0.0, 10.0, allow_nan=False),
        beta=st.floats(0.0, 10.0, allow_nan=False),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_latency_aware_for_any_weights(self, snapshot, alpha, beta, seed):
        occupancy, capacities, last_server, rtt = snapshot
        chosen = LatencyAwarePolicy(alpha=alpha, beta=beta).select(
            occupancy, capacities, last_server, np.random.default_rng(seed),
            rtt=rtt,
        )
        if chosen is not None:
            assert occupancy[chosen] < capacities[chosen]


class TestStickyAffinity:
    @given(snapshot=facility_snapshots(), seed=st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_returns_last_server_whenever_it_has_room(self, snapshot, seed):
        occupancy, capacities, last_server, rtt = snapshot
        rng = np.random.default_rng(seed)
        chosen = StickyPolicy().select(
            occupancy, capacities, last_server, rng, rtt=rtt
        )
        if 0 <= last_server and occupancy[last_server] < capacities[last_server]:
            assert chosen == last_server
        elif np.all(occupancy >= capacities):
            assert chosen is None
        else:
            assert chosen is not None
            assert occupancy[chosen] < capacities[chosen]


class TestLowestRttIsAnArgmin:
    @given(snapshot=facility_snapshots(), seed=st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_choice_minimises_rtt_over_open_servers(self, snapshot, seed):
        occupancy, capacities, last_server, rtt = snapshot
        rng = np.random.default_rng(seed)
        chosen = LowestRttPolicy().select(
            occupancy, capacities, last_server, rng, rtt=rtt
        )
        open_servers = np.flatnonzero(occupancy < capacities)
        if open_servers.size == 0:
            assert chosen is None
        else:
            assert chosen in open_servers
            assert rtt[chosen] == rtt[open_servers].min()


class TestPoliciesArePureFunctions:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    @given(snapshot=facility_snapshots(), seed=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_same_inputs_same_rng_state_same_choice(self, name, snapshot, seed):
        occupancy, capacities, last_server, rtt = snapshot
        policy = make_policy(name)
        before = (occupancy.copy(), capacities.copy(), rtt.copy())
        first = policy.select(
            occupancy, capacities, last_server,
            np.random.default_rng(seed), rtt=rtt,
        )
        # a second call — same snapshot, a fresh generator at the same
        # state, even a fresh policy instance — must reproduce the choice
        second = make_policy(name).select(
            occupancy.copy(), capacities.copy(), last_server,
            np.random.default_rng(seed), rtt=rtt.copy(),
        )
        assert first == second
        # and the snapshot the policy read is untouched
        assert np.array_equal(occupancy, before[0])
        assert np.array_equal(capacities, before[1])
        assert np.array_equal(rtt, before[2])
