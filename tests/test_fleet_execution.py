"""Determinism and sharding tests for the fleet execution layer.

The contract under test: the same fleet seed yields bit-identical
facility aggregates for 1, 2, and 4 workers — the whole point of
index-derived seeds plus index-ordered folding.
"""

import numpy as np
import pytest

from repro.fleet import (
    FleetScenario,
    fleet_server_seed,
    hosting_facility,
    resolve_workers,
    set_default_workers,
    shard_map,
    shard_map_fold,
)
from repro.gameserver.config import quick_test_profile

FLUID_ARRAYS = ("in_counts", "out_counts", "in_bytes", "out_bytes")
TRACE_ARRAYS = (
    "timestamps",
    "directions",
    "src_addrs",
    "dst_addrs",
    "src_ports",
    "dst_ports",
    "payload_sizes",
    "protocols",
)


def small_fleet(seed: int = 5):
    return hosting_facility(
        n_servers=4,
        duration=600.0,
        seed=seed,
        base_profile=quick_test_profile(600.0),
    )


def assert_same_arrays(a, b, names):
    for name in names:
        assert np.array_equal(getattr(a, name), getattr(b, name)), name


class TestFleetDeterminism:
    @pytest.fixture(scope="class")
    def serial_series(self):
        return FleetScenario(small_fleet()).aggregate_per_second(workers=1)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_series_bit_identical_across_worker_counts(self, serial_series, workers):
        sharded = FleetScenario(small_fleet()).aggregate_per_second(workers=workers)
        assert_same_arrays(serial_series, sharded, FLUID_ARRAYS)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_packet_window_bit_identical_across_worker_counts(self, workers):
        serial = FleetScenario(small_fleet()).aggregate_packet_window(
            0.0, 90.0, workers=1
        )
        sharded = FleetScenario(small_fleet()).aggregate_packet_window(
            0.0, 90.0, workers=workers
        )
        assert len(serial) > 0
        assert_same_arrays(serial, sharded, TRACE_ARRAYS)

    def test_fanin_does_not_change_merged_window(self):
        wide = FleetScenario(small_fleet()).aggregate_packet_window(
            0.0, 60.0, workers=1, fanin=16
        )
        narrow = FleetScenario(small_fleet()).aggregate_packet_window(
            0.0, 60.0, workers=1, fanin=2
        )
        assert_same_arrays(wide, narrow, TRACE_ARRAYS)

    def test_different_fleet_seed_changes_aggregate(self, serial_series):
        other = FleetScenario(small_fleet(seed=6)).aggregate_per_second(workers=1)
        assert not np.array_equal(serial_series.in_counts, other.in_counts)

    def test_server_seeds_are_per_index_and_stable(self):
        seeds = [fleet_server_seed(5, i) for i in range(8)]
        assert len(set(seeds)) == 8
        assert seeds == [fleet_server_seed(5, i) for i in range(8)]

    def test_aggregate_caching_returns_same_object(self):
        scenario = FleetScenario(small_fleet())
        assert scenario.aggregate_per_second(workers=1) is (
            scenario.aggregate_per_second(workers=4)
        )
        scenario.clear_caches()
        assert scenario.aggregate_per_second(workers=1) is not None


class TestShardMapFold:
    def test_fold_order_is_task_order(self):
        result = shard_map(_double, list(range(10)), workers=3)
        assert result == [2 * i for i in range(10)]

    def test_serial_path_used_for_single_worker(self):
        # unpicklable fn is fine serially — proves no pool is spun up
        result = shard_map_fold(
            lambda x: x + 1, [1, 2, 3], lambda acc, r: acc + [r], [], workers=1
        )
        assert result == [2, 3, 4]

    def test_worker_exceptions_propagate(self):
        with pytest.raises(ValueError, match="boom"):
            shard_map(_explode_on_two, [1, 2, 3], workers=2)

    def test_resolve_workers_clamps_to_tasks(self):
        assert resolve_workers(8, 3) == 3
        assert resolve_workers(1, 100) == 1
        assert resolve_workers(None, 2) <= 2

    def test_resolve_workers_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_workers(0, 4)

    def test_default_workers_setting(self):
        try:
            set_default_workers(1)
            assert resolve_workers(None, 100) == 1
        finally:
            set_default_workers(None)
        with pytest.raises(ValueError):
            set_default_workers(0)


def _double(x: int) -> int:
    return 2 * x


def _explode_on_two(x: int) -> int:
    if x == 2:
        raise ValueError("boom")
    return x
