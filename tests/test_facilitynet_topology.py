"""Unit tests for the facility topology tree and provisioning helpers."""

import pytest

from repro.core.facility import FacilityEnvelope, oversubscribed_capacity
from repro.facilitynet.topology import (
    FacilityTopology,
    LinkSpec,
    RackSpec,
    SwitchSpec,
    TIER_CORE,
    TIER_RACK,
    TIER_UPLINK,
    build_topology,
    place_servers,
    provision_from_envelope,
)


def _envelope(peak_pps=1000.0, peak_bps=2e6):
    return FacilityEnvelope(
        duration=60.0,
        percentile=100.0,
        mean_pps=peak_pps * 0.8,
        peak_pps=peak_pps,
        mean_bandwidth_bps=peak_bps * 0.8,
        peak_bandwidth_bps=peak_bps,
    )


class TestPlacement:
    def test_balanced_contiguous_blocks(self):
        assert place_servers(8, 4) == ((0, 1), (2, 3), (4, 5), (6, 7))
        assert place_servers(7, 3) == ((0, 1, 2), (3, 4), (5, 6))
        assert place_servers(3, 3) == ((0,), (1,), (2,))

    def test_deterministic(self):
        assert place_servers(16, 4) == place_servers(16, 4)

    @pytest.mark.parametrize("args", [(0, 1), (4, 0), (4, 5)])
    def test_invalid_shapes_rejected(self, args):
        with pytest.raises(ValueError):
            place_servers(*args)


class TestSpecs:
    def test_switch_validation(self):
        with pytest.raises(ValueError):
            SwitchSpec("s", TIER_RACK, pps_capacity=0.0)
        with pytest.raises(ValueError):
            SwitchSpec("s", TIER_RACK, pps_capacity=100.0, queue_packets=0)
        with pytest.raises(ValueError):
            SwitchSpec("s", TIER_RACK, pps_capacity=100.0, oversubscription=0.0)

    def test_link_validation(self):
        with pytest.raises(ValueError):
            LinkSpec("u", TIER_UPLINK, rate_bps=0.0, buffer_bytes=1000.0)
        with pytest.raises(ValueError):
            LinkSpec("u", TIER_UPLINK, rate_bps=1e6, buffer_bytes=0.0)

    def test_rack_needs_servers(self):
        switch = SwitchSpec("s", TIER_RACK, pps_capacity=100.0)
        with pytest.raises(ValueError):
            RackSpec("r", (), switch)
        with pytest.raises(ValueError):
            RackSpec("r", (0, 0), switch)


class TestTopologyValidation:
    def test_duplicate_placement_rejected(self):
        switch = SwitchSpec("s", TIER_RACK, pps_capacity=100.0)
        core = SwitchSpec("c", TIER_CORE, pps_capacity=100.0)
        uplink = LinkSpec("u", TIER_UPLINK, rate_bps=1e6, buffer_bytes=1e4)
        with pytest.raises(ValueError):
            FacilityTopology(
                racks=(
                    RackSpec("r0", (0, 1), switch),
                    RackSpec("r1", (1, 2), switch),
                ),
                core=core,
                uplink=uplink,
            )

    def test_gap_in_indices_rejected(self):
        switch = SwitchSpec("s", TIER_RACK, pps_capacity=100.0)
        core = SwitchSpec("c", TIER_CORE, pps_capacity=100.0)
        uplink = LinkSpec("u", TIER_UPLINK, rate_bps=1e6, buffer_bytes=1e4)
        with pytest.raises(ValueError):
            FacilityTopology(
                racks=(RackSpec("r0", (0, 2), switch),),
                core=core,
                uplink=uplink,
            )


class TestBuildTopology:
    def test_shape_and_capacities(self):
        topology = build_topology(
            8, 4,
            per_server_pps=100.0,
            per_server_bps=1e5,
            rack_oversubscription=0.5,
            core_oversubscription=2.0,
            uplink_oversubscription=4.0,
        )
        assert topology.n_servers == 8
        assert topology.n_racks == 4
        assert topology.server_to_rack() == (0, 0, 1, 1, 2, 2, 3, 3)
        # rack: 2 servers * 100 pps / 0.5 = 400 pps
        assert topology.racks[0].switch.pps_capacity == pytest.approx(400.0)
        # core: 8 * 100 / 2 = 400 pps
        assert topology.core.pps_capacity == pytest.approx(400.0)
        # uplink: 8 * 1e5 / 4 = 2e5 bps
        assert topology.uplink.rate_bps == pytest.approx(2e5)
        assert topology.uplink.oversubscription == pytest.approx(4.0)

    def test_hops_in_order(self):
        topology = build_topology(4, 2, per_server_pps=10.0, per_server_bps=1e4)
        tiers = [hop.tier for hop in topology.hops_in_order()]
        assert tiers == [TIER_RACK, TIER_RACK, TIER_CORE, TIER_UPLINK]

    def test_describe_mentions_every_hop(self):
        topology = build_topology(4, 2, per_server_pps=10.0, per_server_bps=1e4)
        text = topology.describe()
        for name in ("tor0", "tor1", "core", "uplink"):
            assert name in text

    def test_uplink_buffer_floor(self):
        tiny = build_topology(2, 1, per_server_pps=10.0, per_server_bps=1e3)
        assert tiny.uplink.buffer_bytes == pytest.approx(16 * 1024.0)


class TestEnvelopeProvisioning:
    def test_oversubscribed_capacity(self):
        envelope = _envelope(peak_pps=1000.0, peak_bps=2e6)
        assert oversubscribed_capacity(envelope, 1.0) == (1000.0, 2e6)
        pps, bps = oversubscribed_capacity(envelope, 4.0)
        assert pps == pytest.approx(250.0)
        assert bps == pytest.approx(5e5)
        with pytest.raises(ValueError):
            oversubscribed_capacity(envelope, 0.0)

    def test_per_server_share(self):
        envelope = _envelope(peak_pps=1000.0, peak_bps=2e6)
        assert envelope.per_server_share(4) == (250.0, 5e5)
        with pytest.raises(ValueError):
            envelope.per_server_share(0)

    def test_provision_from_envelope_ratios_exact(self):
        envelope = _envelope(peak_pps=1200.0, peak_bps=6e6)
        topology = provision_from_envelope(
            envelope, n_servers=6, n_racks=3, uplink_oversubscription=2.0
        )
        # the uplink carries exactly peak/ratio regardless of rack split
        assert topology.uplink.rate_bps == pytest.approx(3e6)
        assert topology.core.pps_capacity == pytest.approx(1200.0)
        assert sum(
            rack.switch.pps_capacity for rack in topology.racks
        ) == pytest.approx(1200.0)
