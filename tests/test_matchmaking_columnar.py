"""Scalar/columnar engine parity: the bit-identity contract.

The columnar engine (:mod:`repro.matchmaking.columnar`) is only allowed
to be fast because it is *provably* the same computation: for every
stock policy, every :class:`MatchmakingResult` field — sessions,
occupancy traces, admission stats, per-server attribution, session RTTs
— must equal the scalar engine's bit for bit.  This suite pins that
contract on the golden scenario, under hypothesis property sweeps,
through the saturated-window fast path, and downstream across worker
counts and warm/cold shard caches; it also covers the ``engine`` knob's
validation, the hoisted ``select_accepts_rtt`` probe (legacy
pre-RTT policies keep working) and the simplified ``drain_departures``
boundary semantics.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fleet.cache import ShardCache
from repro.fleet.profiles import hosting_facility
from repro.fleet.scenario import FleetScenario
from repro.matchmaking import (
    ENGINES,
    POLICIES,
    LatencyAwarePolicy,
    LeastLoadedPolicy,
    MatchmakingSimulator,
    PoolConfig,
    RttMatrix,
    SelectionPolicy,
    simulate_matchmaking,
    supports_policy,
)

POLICY_NAMES = sorted(POLICIES)


def _scenario(
    seed=3,
    n_servers=3,
    duration=900.0,
    demand_ratio=3.0,
    session_duration_mean=180.0,
    session_duration_min=5.0,
):
    fleet = hosting_facility(n_servers=n_servers, duration=duration, seed=seed)
    config = PoolConfig.for_fleet(
        fleet,
        demand_ratio=demand_ratio,
        epoch_length=60.0,
        session_duration_mean=session_duration_mean,
        session_duration_min=session_duration_min,
    )
    rtt = RttMatrix.for_fleet(fleet, config.region_profile, seed=seed)
    return fleet, config, rtt


def _both_engines(policy, seed=3, **kwargs):
    fleet, config, rtt = _scenario(seed=seed, **kwargs)
    scalar = simulate_matchmaking(
        fleet, policy, config, rtt=rtt, seed=seed, engine="scalar"
    )
    columnar = simulate_matchmaking(
        fleet, policy, config, rtt=rtt, seed=seed, engine="columnar"
    )
    return scalar, columnar


def _assert_identical(a, b):
    """Bit-identity across every field of two MatchmakingResults."""
    np.testing.assert_array_equal(a.occupancy, b.occupancy)
    np.testing.assert_array_equal(a.per_server_attempts, b.per_server_attempts)
    np.testing.assert_array_equal(
        a.per_server_rejections, b.per_server_rejections
    )
    assert a.admission == b.admission
    assert a.sessions == b.sessions
    assert a.capacities == b.capacities
    assert a.repeat_assignments == b.repeat_assignments
    assert len(a.session_rtts) == len(b.session_rtts)
    for rtts_a, rtts_b in zip(a.session_rtts, b.session_rtts):
        np.testing.assert_array_equal(rtts_a, rtts_b)
    assert a.describe() == b.describe()


class TestGoldenParity:
    """All six stock policies on the golden-regression scenario."""

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_policy_bit_identical(self, policy):
        scalar, columnar = _both_engines(policy)
        _assert_identical(scalar, columnar)

    def test_custom_weights_bit_identical(self):
        scalar, columnar = _both_engines(
            LatencyAwarePolicy(alpha=2.0, beta=0.25)
        )
        _assert_identical(scalar, columnar)

    def test_auto_resolves_to_columnar_for_stock_policies(self):
        fleet, config, rtt = _scenario()
        sim = MatchmakingSimulator(
            fleet, "least_loaded", config=config, rtt=rtt, engine="auto"
        )
        assert sim._engine_resolved == "columnar"
        _assert_identical(
            sim.run(),
            simulate_matchmaking(
                fleet, "least_loaded", config, rtt=rtt, engine="scalar"
            ),
        )


class TestSaturatedWindows:
    """The departure/attempt window fast path, at flash-crowd demand."""

    @pytest.mark.parametrize(
        "policy", ["least_loaded", "sticky", "lowest_rtt", "latency_aware"]
    )
    def test_saturated_parity(self, policy):
        # long sessions + 12x demand keep the facility pinned full, the
        # regime the saturated-window batching serves
        scalar, columnar = _both_engines(
            policy,
            demand_ratio=12.0,
            session_duration_mean=600.0,
        )
        assert scalar.admission.rejected > scalar.admission.admitted
        _assert_identical(scalar, columnar)

    def test_window_path_actually_vectorises(self):
        from repro.obs.metrics import registry, reset_metrics

        reset_metrics()
        _, columnar = _both_engines(
            "least_loaded", demand_ratio=12.0, session_duration_mean=600.0
        )
        reg = registry()
        vectorised = reg.counter(
            "matchmaking.columnar.vectorised_attempts"
        ).value
        fallback = reg.counter(
            "matchmaking.columnar.scalar_fallback_attempts"
        ).value
        assert vectorised + fallback == columnar.admission.attempts
        # under saturation the batched spans must dominate
        assert vectorised > fallback


class TestPropertyParity:
    """Hypothesis sweep: parity is not a property of one scenario."""

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        demand=st.sampled_from([0.5, 1.5, 4.0]),
        n_servers=st.integers(min_value=1, max_value=5),
        policy=st.sampled_from(POLICY_NAMES),
    )
    def test_sweep_bit_identical(self, seed, demand, n_servers, policy):
        scalar, columnar = _both_engines(
            policy,
            seed=seed,
            n_servers=n_servers,
            duration=600.0,
            demand_ratio=demand,
        )
        _assert_identical(scalar, columnar)


class TestDownstreamParity:
    """A columnar result feeds the sharded fleet stage identically."""

    @pytest.fixture(scope="class")
    def columnar_result(self):
        fleet, config, rtt = _scenario(n_servers=4, duration=600.0)
        return simulate_matchmaking(
            fleet, "least_loaded", config, rtt=rtt, engine="columnar"
        )

    def _series_equal(self, a, b):
        return all(
            np.array_equal(np.asarray(getattr(a, f)), np.asarray(getattr(b, f)))
            for f in ("in_counts", "out_counts", "in_bytes", "out_bytes")
        )

    @pytest.mark.parametrize("workers", [1, 4])
    def test_workers_bit_identical(self, columnar_result, workers):
        serial = FleetScenario.from_matchmaking(
            columnar_result
        ).aggregate_per_second(workers=1)
        sharded = FleetScenario.from_matchmaking(
            columnar_result
        ).aggregate_per_second(workers=workers)
        assert self._series_equal(serial, sharded)

    def test_warm_cache_replays_bit_identically(
        self, columnar_result, tmp_path
    ):
        cache = ShardCache(tmp_path / "shards")
        cold = FleetScenario.from_matchmaking(
            columnar_result, cache=cache
        ).aggregate_per_second(workers=1)
        warm_cache = ShardCache(tmp_path / "shards")
        warm = FleetScenario.from_matchmaking(
            columnar_result, cache=warm_cache
        ).aggregate_per_second(workers=1)
        assert warm_cache.stats.hits == columnar_result.n_servers
        assert warm_cache.stats.stores == 0
        assert self._series_equal(cold, warm)

    def test_scalar_and_columnar_share_cache_entries(
        self, columnar_result, tmp_path
    ):
        # identical sessions -> identical shard keys: a cache warmed by
        # one engine serves the other without a single store
        fleet, config, rtt = _scenario(n_servers=4, duration=600.0)
        scalar = simulate_matchmaking(
            fleet, "least_loaded", config, rtt=rtt, engine="scalar"
        )
        cache = ShardCache(tmp_path / "xengine")
        FleetScenario.from_matchmaking(
            scalar, cache=cache
        ).aggregate_per_second(workers=1)
        replay_cache = ShardCache(tmp_path / "xengine")
        FleetScenario.from_matchmaking(
            columnar_result, cache=replay_cache
        ).aggregate_per_second(workers=1)
        assert replay_cache.stats.hits == columnar_result.n_servers
        assert replay_cache.stats.stores == 0


class _LegacyPolicy(SelectionPolicy):
    """Out-of-tree policy written against the pre-RTT signature."""

    name = "legacy"

    def select(self, occupancy, capacities, last_server, rng):
        return 0


class _KwargsPolicy(SelectionPolicy):
    """Out-of-tree policy taking the RTT view through ``**kwargs``."""

    name = "kwargs"

    def select(self, occupancy, capacities, last_server, rng, **kwargs):
        return 0


class TestEngineKnob:
    def test_engines_tuple(self):
        assert ENGINES == ("auto", "scalar", "columnar")

    def test_unknown_engine_rejected(self):
        fleet, config, rtt = _scenario()
        with pytest.raises(ValueError, match="engine"):
            MatchmakingSimulator(
                fleet, "least_loaded", config=config, rtt=rtt, engine="turbo"
            )

    def test_columnar_refuses_unsupported_policy(self):
        fleet, config, rtt = _scenario()
        with pytest.raises(ValueError, match="bit-identity"):
            MatchmakingSimulator(
                fleet,
                _LegacyPolicy(),
                config=config,
                rtt=rtt,
                engine="columnar",
            )

    def test_auto_falls_back_to_scalar_for_subclasses(self):
        # a subclass overriding select has unknown behaviour: identity
        # matching (not isinstance) must route it to the scalar loop
        class Tweaked(LeastLoadedPolicy):
            def select(self, occupancy, capacities, last_server, rng, rtt=None):
                return 0

        assert not supports_policy(Tweaked())
        fleet, config, rtt = _scenario()
        sim = MatchmakingSimulator(
            fleet, Tweaked(), config=config, rtt=rtt, engine="auto"
        )
        assert sim._engine_resolved == "scalar"
        assert sim.run().admission.attempts > 0


class TestSignatureProbe:
    """The hoisted, per-class-cached ``select_accepts_rtt`` probe."""

    def test_stock_policies_accept_rtt(self):
        for name in POLICY_NAMES:
            assert POLICIES[name].select_accepts_rtt()

    def test_legacy_signature_detected(self):
        assert not _LegacyPolicy.select_accepts_rtt()
        assert _KwargsPolicy.select_accepts_rtt()

    def test_probe_cached_per_class_not_inherited(self):
        class Child(_LegacyPolicy):
            def select(self, occupancy, capacities, last_server, rng, rtt=None):
                return 0

        assert _LegacyPolicy.select_accepts_rtt() is False
        # the parent's cached False must not leak onto the child, whose
        # overriding select does accept the RTT view
        assert Child.select_accepts_rtt() is True
        assert "_select_accepts_rtt" in Child.__dict__

    def test_legacy_policy_simulates_without_rtt_view(self):
        # end to end: the engine probes the signature once and withholds
        # the RTT view from pre-RTT implementations
        fleet, config, rtt = _scenario(n_servers=2, duration=300.0)
        result = simulate_matchmaking(
            fleet, _LegacyPolicy(), config, rtt=rtt, engine="auto"
        )
        assert result.admission.admitted > 0
        # every admission landed on server 0, as the stub dictates
        assert all(len(s) == 0 for s in result.sessions[1:])


class TestDrainBoundary:
    """Boundary-time departures under the simplified drain predicate."""

    def test_sessions_ending_at_horizon_stay_in_final_sample(self):
        # clamp every duration to the horizon: sessions admitted late
        # end *exactly* at the final epoch boundary, and the strict
        # epoch-end drain must keep them alive in that epoch's
        # occupancy sample (they end at t1, not before it)
        fleet, config, rtt = _scenario(
            n_servers=2,
            duration=300.0,
            demand_ratio=4.0,
            session_duration_mean=250.0,
            session_duration_min=400.0,  # > horizon: every end clips
        )
        for engine in ("scalar", "columnar"):
            result = simulate_matchmaking(
                fleet, "least_loaded", config, rtt=rtt, engine=engine
            )
            ends = np.array(
                [
                    s.end
                    for server in result.sessions
                    for s in server
                ]
            )
            assert ends.size > 0
            np.testing.assert_array_equal(ends, fleet.horizon)
            # alive at the boundary: the final occupancy column counts
            # every session that ends exactly at the horizon
            assert int(result.occupancy[:, -1].sum()) == ends.size

    def test_engines_agree_on_boundary_heavy_scenario(self):
        scalar, columnar = _both_engines(
            "least_loaded",
            n_servers=2,
            duration=300.0,
            demand_ratio=4.0,
            session_duration_mean=250.0,
            session_duration_min=400.0,
        )
        _assert_identical(scalar, columnar)
