"""Unit tests for the columnar Trace container and TraceBuilder."""

import numpy as np
import pytest

from repro.net.addresses import IPv4Address
from repro.net.headers import HeaderOverhead, OverheadModel
from repro.trace.packet import Direction, PacketRecord
from repro.trace.trace import Trace, TraceBuilder

SERVER = IPv4Address("10.0.0.2")
CLIENT = IPv4Address("10.0.0.1")


def make_record(t, direction=Direction.IN, size=40):
    if direction is Direction.IN:
        return PacketRecord(t, direction, CLIENT, SERVER, 27005, 27015, size)
    return PacketRecord(t, direction, SERVER, CLIENT, 27015, 27005, size)


class TestPacketRecord:
    def test_flow_key_same_both_directions(self):
        incoming = make_record(0.0, Direction.IN)
        outgoing = make_record(0.1, Direction.OUT)
        assert incoming.flow_key() == outgoing.flow_key()

    def test_client_address(self):
        assert make_record(0.0, Direction.IN).client_address == CLIENT
        assert make_record(0.0, Direction.OUT).client_address == CLIENT

    def test_wire_size(self):
        record = make_record(0.0, size=40)
        assert record.wire_size(OverheadModel()) == 94

    def test_validation(self):
        with pytest.raises(ValueError):
            make_record(-1.0)
        with pytest.raises(ValueError):
            make_record(0.0, size=-1)
        with pytest.raises(ValueError):
            PacketRecord(0.0, Direction.IN, CLIENT, SERVER, 70000, 1, 10)

    def test_direction_opposite(self):
        assert Direction.IN.opposite is Direction.OUT
        assert Direction.OUT.opposite is Direction.IN


class TestTraceConstruction:
    def test_from_records_roundtrip(self):
        records = [make_record(0.1 * i) for i in range(5)]
        trace = Trace.from_records(records, server_address=SERVER)
        assert len(trace) == 5
        assert trace.record(2).timestamp == pytest.approx(0.2)

    def test_empty_trace(self):
        trace = Trace.empty(server_address=SERVER)
        assert len(trace) == 0
        assert trace.duration == 0.0
        assert trace.total_payload_bytes == 0

    def test_builder_sorts_interleaved_batches(self):
        builder = TraceBuilder(server_address=SERVER)
        builder.add_batch(
            timestamps=np.asarray([0.3, 0.5]),
            directions=np.asarray([0, 0]),
            src_addrs=np.asarray([CLIENT.value] * 2),
            dst_addrs=np.asarray([SERVER.value] * 2),
            src_ports=np.asarray([1, 1]),
            dst_ports=np.asarray([2, 2]),
            payload_sizes=np.asarray([10, 20]),
        )
        builder.add(0.4, Direction.OUT, SERVER.value, CLIENT.value, 2, 1, 30)
        trace = builder.build()
        assert list(trace.timestamps) == pytest.approx([0.3, 0.4, 0.5])

    def test_builder_len_counts_both_paths(self):
        builder = TraceBuilder()
        builder.add(0.0, Direction.IN, 1, 2, 3, 4, 5)
        builder.add_batch(
            timestamps=np.asarray([1.0]),
            directions=np.asarray([1]),
            src_addrs=np.asarray([2]),
            dst_addrs=np.asarray([1]),
            src_ports=np.asarray([4]),
            dst_ports=np.asarray([3]),
            payload_sizes=np.asarray([6]),
        )
        assert len(builder) == 2

    def test_unsorted_constructor_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            Trace(
                timestamps=np.asarray([1.0, 0.5]),
                directions=np.asarray([0, 0]),
                src_addrs=np.asarray([1, 1]),
                dst_addrs=np.asarray([2, 2]),
                src_ports=np.asarray([1, 1]),
                dst_ports=np.asarray([2, 2]),
                payload_sizes=np.asarray([10, 10]),
            )

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            Trace(
                timestamps=np.asarray([0.0, 1.0]),
                directions=np.asarray([0]),
                src_addrs=np.asarray([1, 1]),
                dst_addrs=np.asarray([2, 2]),
                src_ports=np.asarray([1, 1]),
                dst_ports=np.asarray([2, 2]),
                payload_sizes=np.asarray([10, 10]),
            )

    def test_mismatched_batch_rejected(self):
        builder = TraceBuilder()
        with pytest.raises(ValueError, match="mismatch"):
            builder.add_batch(
                timestamps=np.asarray([0.0, 1.0]),
                directions=np.asarray([0]),
                src_addrs=np.asarray([1, 1]),
                dst_addrs=np.asarray([2, 2]),
                src_ports=np.asarray([1, 1]),
                dst_ports=np.asarray([2, 2]),
                payload_sizes=np.asarray([10, 10]),
            )


class TestTraceQueries:
    def test_directional_split(self, synthetic_trace):
        assert len(synthetic_trace.inbound()) == 10
        assert len(synthetic_trace.outbound()) == 5

    def test_byte_totals(self, synthetic_trace):
        assert synthetic_trace.total_payload_bytes == 10 * 40 + 5 * 130
        per_packet = synthetic_trace.overhead.per_packet
        assert (
            synthetic_trace.total_wire_bytes
            == synthetic_trace.total_payload_bytes + 15 * per_packet
        )

    def test_time_slice_half_open(self, synthetic_trace):
        # inbound at 0.0..0.9 step 0.1; slice [0.2, 0.5) keeps 0.2,0.3,0.4 (+out 0.25,0.45)
        window = synthetic_trace.time_slice(0.2, 0.5)
        assert np.all(window.timestamps >= 0.2)
        assert np.all(window.timestamps < 0.5)
        assert len(window) == 5

    def test_time_slice_inverted_raises(self, synthetic_trace):
        with pytest.raises(ValueError):
            synthetic_trace.time_slice(1.0, 0.0)

    def test_select_requires_bool_mask(self, synthetic_trace):
        with pytest.raises(ValueError):
            synthetic_trace.select(np.ones(len(synthetic_trace), dtype=int))

    def test_record_negative_index(self, synthetic_trace):
        last = synthetic_trace.record(-1)
        assert last.timestamp == pytest.approx(synthetic_trace.end_time)

    def test_record_out_of_range(self, synthetic_trace):
        with pytest.raises(IndexError):
            synthetic_trace.record(len(synthetic_trace))

    def test_iteration_yields_records(self, synthetic_trace):
        records = list(synthetic_trace)
        assert len(records) == len(synthetic_trace)
        assert all(isinstance(r, PacketRecord) for r in records)

    def test_wire_sizes_vector(self, synthetic_trace):
        wire = synthetic_trace.wire_sizes()
        assert wire.sum() == synthetic_trace.total_wire_bytes


class TestTraceMerge:
    def test_merge_interleaves_sorted(self):
        a = Trace.from_records([make_record(0.0), make_record(1.0)])
        b = Trace.from_records([make_record(0.5)])
        merged = a.merge(b)
        assert list(merged.timestamps) == pytest.approx([0.0, 0.5, 1.0])

    def test_merge_with_empty_identity(self, synthetic_trace):
        empty = Trace.empty()
        assert synthetic_trace.merge(empty) is synthetic_trace
        assert empty.merge(synthetic_trace) is synthetic_trace

    def test_merge_preserves_counts(self, synthetic_trace):
        doubled = synthetic_trace.merge(synthetic_trace)
        assert len(doubled) == 2 * len(synthetic_trace)
        assert doubled.total_payload_bytes == 2 * synthetic_trace.total_payload_bytes


class TestOverheadPropagation:
    def test_custom_overhead_used(self):
        model = OverheadModel(HeaderOverhead(link=0, network=20, transport=8))
        trace = Trace.from_records([make_record(0.0, size=100)], overhead=model)
        assert trace.total_wire_bytes == 128
