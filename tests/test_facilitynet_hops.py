"""Unit tests for the reusable hop engines (pps kernel, bps tail-drop)."""

import numpy as np
import pytest

from repro.facilitynet import hops
from repro.facilitynet.hops import (
    FreezePolicy,
    bps_hop,
    fifo_forward,
    pps_hop,
    tail_drop_link,
)
from repro.net.addresses import IPv4Address
from repro.trace.packet import Direction
from repro.trace.trace import Trace, TraceBuilder

SERVER = IPv4Address("10.0.0.2")
CLIENT = IPv4Address("24.0.0.1")


def poisson_trace(rate=500.0, duration=10.0, seed=3, payload=120):
    rng = np.random.default_rng(seed)
    builder = TraceBuilder(server_address=SERVER)
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t >= duration:
            break
        builder.add(t, Direction.OUT, SERVER.value, CLIENT.value,
                    27015, 1000, payload)
    return builder.build()


class TestFifoForwardKernel:
    def test_empty_stream(self):
        result = fifo_forward(np.empty(0), np.empty(0), primary_queue=4)
        assert result.fates.size == 0
        assert result.freeze_windows == []

    def test_light_load_all_forwarded(self):
        t = np.arange(100) * 0.01
        service = np.full(100, 0.001)
        result = fifo_forward(t, service, primary_queue=4)
        assert np.all(result.fates == 1)
        assert np.all(result.departures >= t)
        assert np.all(np.diff(result.departures) >= 0)

    def test_queue_overflow_drops(self):
        # 50 simultaneous arrivals against a queue of 8: exactly 8 admitted
        t = np.zeros(50)
        service = np.full(50, 1.0)
        result = fifo_forward(t, service, primary_queue=8)
        assert int((result.fates == 1).sum()) == 8
        assert int((result.fates == 0).sum()) == 42

    def test_blackout_drops_primary(self):
        t = np.arange(100) * 0.01
        service = np.full(100, 1e-4)
        result = fifo_forward(
            t, service, primary_queue=64, blackouts=[(0.25, 0.50)]
        )
        dropped = t[result.fates == 0]
        assert dropped.size > 0
        assert np.all((dropped >= 0.25) & (dropped < 0.50))

    def test_freeze_suppresses_secondary(self):
        # all primaries dropped by a blackout; the freeze policy must
        # then suppress secondaries inside the freeze window
        t = np.arange(200) * 0.01
        primary = np.arange(200) % 2 == 0
        service = np.full(200, 1e-4)
        result = fifo_forward(
            t,
            service,
            primary_mask=primary,
            primary_queue=64,
            secondary_queue=64,
            blackouts=[(0.0, 1.0)],
            freeze=FreezePolicy(threshold=5, window=0.5, duration=0.3, lag=0.0),
        )
        assert len(result.freeze_windows) > 0
        assert int((result.fates == -1).sum()) > 0

    def test_validates_queue_capacity(self):
        with pytest.raises(ValueError):
            fifo_forward(np.zeros(1), np.ones(1), primary_queue=0)

    def test_freeze_policy_validation(self):
        with pytest.raises(ValueError):
            FreezePolicy(threshold=0, window=0.5, duration=0.1, lag=0.0)
        with pytest.raises(ValueError):
            FreezePolicy(threshold=1, window=-1.0, duration=0.1, lag=0.0)


class TestTailDropLink:
    def test_light_load_no_loss(self):
        t = np.arange(1000) * 0.01
        sizes = np.full(1000, 100.0)
        # 100 B / 10 ms = 80 kbps offered against a 1 Mbps link
        fates, departures = tail_drop_link(t, sizes, 1e6, 10_000)
        assert np.all(fates == 1)
        # each packet transmits alone: delay = 100 B / 125 kB/s = 0.8 ms
        np.testing.assert_allclose(departures - t, 8e-4)

    def test_overload_sheds_expected_fraction(self):
        t = np.arange(20000) * 0.001
        sizes = np.full(20000, 250.0)
        # offered 2 Mbps against 1 Mbps: about half the packets must die
        fates, _ = tail_drop_link(t, sizes, 1e6, 4_000)
        loss = 1.0 - fates.mean()
        assert loss == pytest.approx(0.5, abs=0.05)

    def test_forwarded_rate_capped_at_line_rate(self):
        rng = np.random.default_rng(11)
        t = np.sort(rng.uniform(0.0, 10.0, size=30000))
        sizes = np.full(30000, 200.0)
        rate = 2e6
        fates, departures = tail_drop_link(t, sizes, rate, 8_000)
        carried_bits = 8.0 * 200.0 * int((fates == 1).sum())
        span = float(np.nanmax(departures) - t[0])
        assert carried_bits / span <= rate * 1.05

    def test_bigger_buffer_never_more_loss(self):
        rng = np.random.default_rng(5)
        t = np.sort(rng.uniform(0.0, 5.0, size=8000))
        sizes = rng.integers(60, 1400, size=8000).astype(float)
        losses = []
        for buffer_bytes in (2_000, 8_000, 64_000):
            fates, _ = tail_drop_link(t, sizes, 2e6, buffer_bytes)
            losses.append(1.0 - fates.mean())
        assert losses[0] >= losses[1] >= losses[2]

    def test_departures_fifo_monotone(self):
        rng = np.random.default_rng(9)
        t = np.sort(rng.uniform(0.0, 2.0, size=5000))
        sizes = rng.integers(60, 1400, size=5000).astype(float)
        _, departures = tail_drop_link(t, sizes, 1.5e6, 6_000)
        kept = departures[~np.isnan(departures)]
        assert np.all(np.diff(kept) >= -1e-9)

    @pytest.mark.parametrize("buffer_bytes", [1e12, 6_000.0])
    def test_vectorised_fast_path_matches_scalar(self, buffer_bytes):
        """Chunked fast-path output equals the pure scalar recursion."""
        rng = np.random.default_rng(21)
        n = 6000
        t = np.sort(rng.uniform(0.0, 4.0, size=n))
        sizes = rng.integers(60, 1400, size=n).astype(float)
        fates, departures = tail_drop_link(t, sizes, 5e6, buffer_bytes)

        ref_fates = np.ones(n, dtype=np.int8)
        ref_departures = np.full(n, np.nan)
        hops._scalar_tail_drop(
            t, sizes, 5e6 / 8.0, buffer_bytes, ref_fates, ref_departures,
            0, n, 0.0, float(t[0]),
        )
        assert np.array_equal(fates, ref_fates)
        np.testing.assert_allclose(departures, ref_departures, rtol=1e-9)

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            tail_drop_link(np.zeros(1), np.ones(1), 0.0, 100.0)
        with pytest.raises(ValueError):
            tail_drop_link(np.zeros(1), np.ones(1), 1e6, 0.0)

    def test_empty(self):
        fates, departures = tail_drop_link(np.empty(0), np.empty(0), 1e6, 100.0)
        assert fates.size == 0 and departures.size == 0


class TestTraceHops:
    def test_pps_hop_conserves_and_reports(self):
        trace = poisson_trace(rate=800.0)
        traversal = pps_hop(trace, pps_capacity=500.0, queue_packets=16)
        assert traversal.offered == len(trace)
        assert traversal.forwarded + traversal.dropped == traversal.offered
        assert traversal.dropped > 0  # sustained overload must shed
        assert traversal.loss_rate == pytest.approx(
            traversal.dropped / traversal.offered
        )
        assert np.all(traversal.delays() > 0)

    def test_pps_hop_jitter_is_seeded(self):
        trace = poisson_trace(rate=600.0)
        a = pps_hop(trace, 700.0, 16, service_cv=0.3, seed=5)
        b = pps_hop(trace, 700.0, 16, service_cv=0.3, seed=5)
        c = pps_hop(trace, 700.0, 16, service_cv=0.3, seed=6)
        assert np.array_equal(a.departures, b.departures, equal_nan=True)
        assert not np.array_equal(a.departures, c.departures, equal_nan=True)

    def test_egress_retimestamps_and_sorts(self):
        trace = poisson_trace(rate=900.0)
        traversal = pps_hop(trace, 600.0, 8)
        egress = traversal.egress()
        assert len(egress) == traversal.forwarded
        assert np.all(np.diff(egress.timestamps) >= 0)
        assert egress.total_payload_bytes <= trace.total_payload_bytes
        assert egress.overhead is trace.overhead

    def test_series_accounts_offered_and_carried(self):
        trace = poisson_trace(rate=900.0, duration=5.0)
        traversal = pps_hop(trace, 600.0, 8)
        series = traversal.series(0.0, 6.0)
        assert float(series.in_counts.sum()) == traversal.offered
        assert float(series.out_counts.sum()) == traversal.forwarded
        drops = series.in_counts - series.out_counts
        assert float(drops.sum()) == traversal.dropped
        assert np.all(drops >= 0)

    def test_bps_hop_uses_wire_sizes(self):
        trace = poisson_trace(rate=200.0, duration=5.0, payload=0)
        # zero payload still costs wire overhead: a link sized below the
        # overhead-only load must drop
        wire_bps = trace.overhead.per_packet * 8.0 * 200.0
        clean = bps_hop(trace, rate_bps=wire_bps * 2.0, buffer_bytes=5_000)
        choked = bps_hop(trace, rate_bps=wire_bps * 0.5, buffer_bytes=500)
        assert clean.dropped == 0
        assert choked.dropped > 0

    def test_empty_trace(self):
        traversal = pps_hop(Trace.empty(server_address=SERVER), 100.0, 4)
        assert traversal.offered == 0
        assert traversal.delays().size == 0
