"""Tests for the span tracer (repro.obs.trace)."""

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    Tracer,
    current_tracer,
    install_tracer,
    peak_rss_kb,
    span,
)


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with tracing disabled."""
    install_tracer(None)
    yield
    install_tracer(None)


class TestDisabledDefault:
    def test_span_is_the_shared_noop(self):
        assert current_tracer() is None
        assert span("anything", attr=1) is NULL_SPAN
        # same object every time: no allocation on the disabled path
        assert span("other") is NULL_SPAN

    def test_null_span_is_inert(self):
        with span("region") as sp:
            sp.add("packets", 10)  # discarded, must not raise


class TestTracer:
    def test_nesting_builds_a_forest(self):
        tracer = Tracer()
        install_tracer(tracer)
        with span("outer", kind="a"):
            with span("inner") as sp:
                sp.add("items", 2)
                sp.add("items", 3)
        with span("second_root"):
            pass
        records = tracer.records()
        assert [r["name"] for r in records] == [
            "outer",
            "inner",
            "second_root",
        ]
        outer, inner, second = records
        assert outer["depth"] == 0 and inner["depth"] == 1
        assert inner["path"] == "outer/inner"
        assert inner["counters"] == {"items": 5}
        assert outer["attrs"] == {"kind": "a"}
        assert second["path"] == "second_root"

    def test_records_exclude_open_spans(self):
        tracer = Tracer()
        install_tracer(tracer)
        with span("closed"):
            pass
        open_span = span("open")
        open_span.__enter__()
        assert [r["name"] for r in tracer.records()] == ["closed"]
        open_span.__exit__(None, None, None)
        assert [r["name"] for r in tracer.records()] == ["closed", "open"]

    def test_timings_are_nonnegative_and_ordered(self):
        tracer = Tracer()
        install_tracer(tracer)
        with span("a"):
            pass
        with span("b"):
            pass
        a, b = tracer.records()
        assert a["wall_s"] >= 0 and b["wall_s"] >= 0
        assert b["start_s"] >= a["start_s"] >= 0

    def test_exceptions_propagate_and_close_the_span(self):
        tracer = Tracer()
        install_tracer(tracer)
        with pytest.raises(RuntimeError):
            with span("failing"):
                raise RuntimeError("boom")
        assert [r["name"] for r in tracer.records()] == ["failing"]

    def test_records_are_json_safe(self):
        import json

        tracer = Tracer()
        install_tracer(tracer)
        with span("region", server=3, label="x") as sp:
            sp.add("n", 1.5)
        json.dumps(tracer.records())  # must not raise


class TestPeakRss:
    def test_monotone_nonnegative(self):
        first = peak_rss_kb()
        assert first >= 0
        assert peak_rss_kb() >= first

    def test_platform_normalisation(self, monkeypatch):
        """ru_maxrss is KiB on Linux but bytes on macOS; peak_rss_kb
        must normalise so both platforms report KiB."""
        import sys

        linux = peak_rss_kb()
        monkeypatch.setattr(sys, "platform", "darwin")
        darwin = peak_rss_kb()
        # same underlying ru_maxrss, divided by 1024 under darwin
        assert darwin == pytest.approx(linux / 1024.0, rel=0.01)
        monkeypatch.setattr(sys, "platform", "linux")
        assert peak_rss_kb() == pytest.approx(linux, rel=0.01)


class TestOpenPath:
    def test_open_path_tracks_the_stack(self):
        tracer = Tracer()
        install_tracer(tracer)
        assert tracer.open_path() == ""
        with span("outer"):
            assert tracer.open_path() == "outer"
            with span("inner"):
                assert tracer.open_path() == "outer/inner"
            assert tracer.open_path() == "outer"
        assert tracer.open_path() == ""
