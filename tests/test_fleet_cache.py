"""Tests for the content-addressed shard cache and its execution wiring."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.fleet.cache import (
    ShardCache,
    UnfingerprintableTask,
    _canonical,
    resolve_cache,
    set_default_cache,
)
from repro.fleet.execution import shard_map, shard_map_fold


@dataclass(frozen=True)
class SquareTask:
    """A tiny pure task: deterministic result from its fields alone."""

    base: float
    exponent: int = 2


def evaluate_square(task: SquareTask) -> float:
    return float(task.base**task.exponent)


@dataclass(frozen=True)
class ArrayTask:
    scale: float
    seed: int


def evaluate_array(task: ArrayTask) -> np.ndarray:
    rng = np.random.default_rng(task.seed)
    return task.scale * rng.uniform(0.0, 1.0, 64)


class TestFingerprinting:
    def test_key_is_deterministic(self, tmp_path):
        cache = ShardCache(tmp_path)
        a = cache.task_key(evaluate_square, SquareTask(2.0))
        b = cache.task_key(evaluate_square, SquareTask(2.0))
        assert a == b
        assert isinstance(a, str) and len(a) == 64

    def test_key_covers_every_field(self, tmp_path):
        cache = ShardCache(tmp_path)
        base = cache.task_key(evaluate_square, SquareTask(2.0, exponent=2))
        assert base != cache.task_key(evaluate_square, SquareTask(3.0, exponent=2))
        assert base != cache.task_key(evaluate_square, SquareTask(2.0, exponent=3))

    def test_key_covers_worker_function(self, tmp_path):
        cache = ShardCache(tmp_path)
        assert cache.task_key(evaluate_square, SquareTask(2.0)) != cache.task_key(
            evaluate_array, SquareTask(2.0)
        )

    def test_key_covers_kernel_version(self, tmp_path, monkeypatch):
        cache = ShardCache(tmp_path)
        before = cache.task_key(evaluate_square, SquareTask(2.0))
        monkeypatch.setattr("repro.fleet.cache.KERNEL_VERSION", "kernels-next")
        assert cache.task_key(evaluate_square, SquareTask(2.0)) != before

    def test_non_dataclass_tasks_are_uncacheable(self, tmp_path):
        cache = ShardCache(tmp_path)
        assert cache.task_key(evaluate_square, 17) is None
        assert cache.task_key(evaluate_square, (1, 2)) is None

    def test_canonical_rejects_identity_reprs(self):
        class Opaque:
            pass

        with pytest.raises(UnfingerprintableTask):
            _canonical(Opaque())

    def test_canonical_handles_real_window_tasks(self, quick_profile):
        from repro.fleet.execution import WindowTask, simulate_window

        task = WindowTask(profile=quick_profile, seed=7, start=0.0, end=30.0)
        text = _canonical(task)
        assert "WindowTask" in text and "seed=7" in text
        cache = ShardCache.__new__(ShardCache)  # key only, no disk
        assert (
            ShardCache.task_key(cache, simulate_window, task)
            == ShardCache.task_key(cache, simulate_window, task)
        )

    def test_canonical_floats_are_exact(self):
        tiny = 0.1 + 0.2  # != 0.3 in float64
        assert _canonical(tiny) != _canonical(0.3)

    def test_canonical_sets_are_order_stable(self):
        # set iteration order depends on the hash seed; the canonical
        # form must not
        assert _canonical({"b", "a", "c"}) == _canonical({"c", "a", "b"})
        assert _canonical(frozenset({2, 1})) == _canonical(frozenset({1, 2}))
        assert _canonical({"a"}) != _canonical(frozenset({"a"}))

    def test_key_covers_package_version(self, tmp_path, monkeypatch):
        cache = ShardCache(tmp_path)
        before = cache.task_key(evaluate_square, SquareTask(2.0))
        monkeypatch.setattr("repro.__version__", "999.0.0")
        assert cache.task_key(evaluate_square, SquareTask(2.0)) != before


class TestShardCacheTraffic:
    def test_miss_then_store_then_hit(self, tmp_path):
        cache = ShardCache(tmp_path)
        key = cache.task_key(evaluate_square, SquareTask(4.0))
        hit, value = cache.fetch(key)
        assert not hit and value is None
        cache.store(key, 16.0)
        hit, value = cache.fetch(key)
        assert hit and value == 16.0
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_array_values_roundtrip_bit_identical(self, tmp_path):
        cache = ShardCache(tmp_path)
        task = ArrayTask(scale=3.7, seed=5)
        key = cache.task_key(evaluate_array, task)
        original = evaluate_array(task)
        cache.store(key, original)
        hit, loaded = cache.fetch(key)
        assert hit
        np.testing.assert_array_equal(loaded, original)

    def test_corrupt_entry_is_a_miss_and_deleted(self, tmp_path):
        cache = ShardCache(tmp_path)
        key = cache.task_key(evaluate_square, SquareTask(9.0))
        cache.store(key, 81.0)
        path = cache.entry_path(key)
        path.write_bytes(b"not a pickle \x00\x01")
        hit, value = cache.fetch(key)
        assert not hit
        assert not path.exists()
        assert cache.stats.invalid == 1
        assert cache.stats.misses == 1
        # the recomputed result can be stored and served again
        cache.store(key, 81.0)
        hit, value = cache.fetch(key)
        assert hit and value == 81.0

    def test_truncated_entry_is_a_miss(self, tmp_path):
        import pickle

        cache = ShardCache(tmp_path)
        key = cache.task_key(evaluate_array, ArrayTask(1.0, 1))
        cache.store(key, evaluate_array(ArrayTask(1.0, 1)))
        path = cache.entry_path(key)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        hit, _ = cache.fetch(key)
        assert not hit
        assert cache.stats.invalid == 1
        # sanity: an intact store would have unpickled
        assert pickle.loads(blob) is not None

    def test_default_cache_plumbing(self, tmp_path):
        cache = ShardCache(tmp_path)
        assert resolve_cache(None) is None
        set_default_cache(cache)
        try:
            assert resolve_cache(None) is cache
            other = ShardCache(tmp_path / "other")
            assert resolve_cache(other) is other
        finally:
            set_default_cache(None)
        assert resolve_cache(None) is None


class TestShardMapFoldCaching:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_cold_then_warm_identical(self, tmp_path, workers):
        cache = ShardCache(tmp_path)
        tasks = [SquareTask(float(i)) for i in range(10)]
        cold = shard_map(evaluate_square, tasks, workers=workers, cache=cache)
        assert cache.stats.misses == 10
        assert cache.stats.stores == 10
        assert cache.stats.hits == 0
        warm = shard_map(evaluate_square, tasks, workers=workers, cache=cache)
        assert warm == cold == [float(i) ** 2 for i in range(10)]
        assert cache.stats.hits == 10
        assert cache.stats.misses == 10  # unchanged

    def test_serial_and_parallel_share_entries(self, tmp_path):
        cache = ShardCache(tmp_path)
        tasks = [ArrayTask(scale=1.5, seed=i) for i in range(6)]
        cold = shard_map(evaluate_array, tasks, workers=3, cache=cache)
        warm = shard_map(evaluate_array, tasks, workers=1, cache=cache)
        for a, b in zip(cold, warm):
            np.testing.assert_array_equal(a, b)
        assert cache.stats.hits == 6

    def test_partial_warm_mixes_hits_and_computes(self, tmp_path):
        cache = ShardCache(tmp_path)
        first = [SquareTask(float(i)) for i in range(4)]
        shard_map(evaluate_square, first, workers=1, cache=cache)
        extended = [SquareTask(float(i)) for i in range(8)]
        result = shard_map(evaluate_square, extended, workers=2, cache=cache)
        assert result == [float(i) ** 2 for i in range(8)]
        assert cache.stats.hits == 4
        assert cache.stats.stores == 8

    def test_fold_order_matches_serial_with_cache(self, tmp_path):
        cache = ShardCache(tmp_path)
        tasks = [SquareTask(float(i)) for i in range(12)]
        seen = []
        shard_map_fold(
            evaluate_square,
            tasks,
            lambda acc, value: (seen.append(value) or acc),
            None,
            workers=4,
            cache=cache,
        )
        assert seen == [float(i) ** 2 for i in range(12)]
        seen.clear()
        shard_map_fold(
            evaluate_square,
            tasks,
            lambda acc, value: (seen.append(value) or acc),
            None,
            workers=4,
            cache=cache,
        )
        assert seen == [float(i) ** 2 for i in range(12)]

    def test_uncacheable_tasks_compute_without_storing(self, tmp_path):
        cache = ShardCache(tmp_path)
        result = shard_map(lambda x: x * 2, [1, 2, 3], workers=1, cache=cache)
        assert result == [2, 4, 6]
        assert cache.stats.stores == 0
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0

    def test_corrupt_entry_recomputed_in_parallel_path(self, tmp_path):
        cache = ShardCache(tmp_path)
        tasks = [SquareTask(float(i)) for i in range(5)]
        shard_map(evaluate_square, tasks, workers=1, cache=cache)
        key = cache.task_key(evaluate_square, tasks[2])
        cache.entry_path(key).write_bytes(b"garbage")
        result = shard_map(evaluate_square, tasks, workers=2, cache=cache)
        assert result == [float(i) ** 2 for i in range(5)]
        assert cache.stats.invalid == 1
        # the repaired entry serves the next run
        hit, value = cache.fetch(key)
        assert hit and value == 4.0


class TestFacilityIntegration:
    def test_rack_ingress_replays_from_cache_bit_identically(self, tmp_path):
        from repro.facilitynet.pipeline import rack_ingress_traces
        from repro.facilitynet.topology import build_topology
        from repro.fleet.profiles import hosting_facility

        fleet = hosting_facility(n_servers=2, duration=90.0, seed=5)
        shape = build_topology(2, 2, per_server_pps=1.0, per_server_bps=1.0)
        cache = ShardCache(tmp_path)
        cold = rack_ingress_traces(fleet, shape, 0.0, 30.0, workers=1, cache=cache)
        assert cache.stats.stores == 2
        assert cache.stats.hits == 0
        warm = rack_ingress_traces(fleet, shape, 0.0, 30.0, workers=1, cache=cache)
        assert cache.stats.hits == 2
        for a, b in zip(cold, warm):
            np.testing.assert_array_equal(a.timestamps, b.timestamps)
            np.testing.assert_array_equal(a.payload_sizes, b.payload_sizes)
            np.testing.assert_array_equal(a.src_addrs, b.src_addrs)

    def test_fleet_scenario_honours_explicit_cache(self, tmp_path):
        from repro.fleet.profiles import hosting_facility
        from repro.fleet.scenario import FleetScenario

        fleet = hosting_facility(n_servers=2, duration=90.0, seed=9)
        cache = ShardCache(tmp_path)
        first = FleetScenario(fleet, cache=cache).aggregate_packet_window(
            0.0, 30.0, workers=1
        )
        assert cache.stats.stores == 2
        second = FleetScenario(fleet, cache=cache).aggregate_packet_window(
            0.0, 30.0, workers=1
        )
        assert cache.stats.hits == 2
        np.testing.assert_array_equal(first.timestamps, second.timestamps)


class TestCacheStatsAccounting:
    """Per-run scoping and process-wide mirroring of cache counters."""

    def test_snapshot_is_a_plain_dict(self, tmp_path):
        from repro.fleet.cache import ShardCache

        cache = ShardCache(tmp_path)
        cache.stats.hits += 2
        cache.stats.misses += 1
        assert cache.stats.snapshot() == {
            "hits": 2,
            "misses": 1,
            "stores": 0,
            "invalid": 0,
        }

    def test_reset_scopes_stats_per_run(self, tmp_path):
        # the bug this pins: a long-lived cache used to accumulate
        # counters forever, so the second run's stats_line lied
        from repro.fleet.cache import ShardCache
        from repro.fleet.execution import shard_map

        cache = ShardCache(tmp_path)
        tasks = [SquareTask(float(i)) for i in range(3)]
        shard_map(evaluate_square, tasks, workers=1, cache=cache)  # cold
        assert cache.stats.snapshot()["misses"] == 3

        cache.reset_stats()
        assert cache.stats.snapshot() == {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "invalid": 0,
        }

        shard_map(evaluate_square, tasks, workers=1, cache=cache)  # warm
        assert cache.stats.snapshot() == {
            "hits": 3,
            "misses": 0,
            "stores": 0,
            "invalid": 0,
        }

    def test_negative_adjustment_rejected(self, tmp_path):
        from repro.fleet.cache import ShardCache

        cache = ShardCache(tmp_path)
        cache.stats.hits += 2
        with pytest.raises(ValueError):
            cache.stats.hits -= 1

    def test_increments_mirror_into_process_registry(self, tmp_path):
        from repro.fleet.cache import ShardCache
        from repro.obs.metrics import registry, reset_metrics

        reset_metrics()
        cache_a = ShardCache(tmp_path / "a")
        cache_b = ShardCache(tmp_path / "b")
        cache_a.stats.hits += 2
        cache_b.stats.hits += 3
        # per-cache scoping stays separate ...
        assert cache_a.stats.hits == 2
        assert cache_b.stats.hits == 3
        # ... while the process registry aggregates across caches
        assert registry().counter("shard_cache.hits").value == 5
        # per-cache reset never rolls back the process-wide totals
        cache_a.reset_stats()
        assert registry().counter("shard_cache.hits").value == 5

    def test_stats_line_reflects_current_window_only(self, tmp_path):
        from repro.fleet.cache import ShardCache

        cache = ShardCache(tmp_path)
        cache.stats.misses += 3
        cache.stats.stores += 3
        assert "0 hits, 3 misses, 3 stored" in cache.stats_line()
        cache.reset_stats()
        cache.stats.hits += 3
        assert "3 hits, 0 misses, 0 stored" in cache.stats_line()
