"""Unit tests for Hurst estimation: the core of the Fig 5 methodology."""

import numpy as np
import pytest

from repro.stats.hurst import (
    default_block_sizes,
    hurst_aggregated_variance,
    hurst_rescaled_range,
    rescaled_range,
    segment_regimes,
    variance_time_plot,
)


def fractional_noise(hurst, n, seed=0):
    """Fractional Gaussian noise via spectral synthesis (good enough for tests)."""
    rng = np.random.default_rng(seed)
    frequencies = np.fft.rfftfreq(n, d=1.0)[1:]
    spectrum = frequencies ** (-(2 * hurst - 1) / 2.0)
    phases = rng.uniform(0, 2 * np.pi, size=spectrum.size)
    coefficients = np.concatenate(
        [[0.0], spectrum * np.exp(1j * phases)]
    )
    return np.fft.irfft(coefficients, n=n)


class TestVarianceTimePlot:
    def test_iid_noise_gives_half(self):
        series = np.random.default_rng(0).poisson(10, 50_000).astype(float)
        plot = variance_time_plot(series, 0.01)
        assert plot.hurst() == pytest.approx(0.5, abs=0.06)

    def test_normalization_at_block_one(self):
        series = np.random.default_rng(1).normal(size=10_000)
        plot = variance_time_plot(series, 1.0, block_sizes=[1, 10, 100])
        assert plot.points[0].normalized_variance == pytest.approx(1.0)

    def test_long_range_dependent_series_high_h(self):
        series = fractional_noise(0.85, 2**15)
        estimate = hurst_aggregated_variance(series)
        assert estimate > 0.7

    def test_short_range_vs_long_range_ordering(self):
        srd = hurst_aggregated_variance(fractional_noise(0.5, 2**14, seed=2))
        lrd = hurst_aggregated_variance(fractional_noise(0.9, 2**14, seed=2))
        assert lrd > srd

    def test_periodic_series_sub_half(self):
        # deterministic bursts every 5 bins: aggregation over the period
        # kills variance faster than independence (the paper's sub-tick regime)
        series = np.tile([20.0, 0.0, 0.0, 0.0, 0.0], 10_000)
        series += np.random.default_rng(3).normal(0, 0.1, series.size)
        plot = variance_time_plot(series, 0.01)
        assert plot.hurst(max_interval=0.05) < 0.4

    def test_constant_series_rejected(self):
        with pytest.raises(ValueError, match="zero variance"):
            variance_time_plot(np.ones(1000), 0.01)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            variance_time_plot(np.random.default_rng(0).normal(size=8), 0.01)

    def test_window_fit_requires_points(self):
        series = np.random.default_rng(0).normal(size=10_000)
        plot = variance_time_plot(series, 0.01)
        with pytest.raises(ValueError, match="window"):
            plot.fit(min_interval=1e6)

    def test_interval_seconds_consistent(self):
        series = np.random.default_rng(0).normal(size=10_000)
        plot = variance_time_plot(series, 0.01, block_sizes=[1, 10, 100])
        assert [p.interval_seconds for p in plot.points] == pytest.approx(
            [0.01, 0.1, 1.0]
        )


class TestDefaultBlockSizes:
    def test_monotone_and_bounded(self):
        sizes = default_block_sizes(100_000)
        assert sizes == sorted(set(sizes))
        assert sizes[0] == 1
        assert sizes[-1] <= 100_000 // 8

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            default_block_sizes(10)


class TestRescaledRange:
    def test_rs_positive(self):
        series = np.random.default_rng(0).normal(size=256)
        assert rescaled_range(series) > 0

    def test_constant_segment_zero(self):
        assert rescaled_range(np.ones(64)) == 0.0

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            rescaled_range(np.asarray([1.0]))

    def test_iid_estimate_near_half(self):
        series = np.random.default_rng(4).normal(size=2**14)
        estimate = hurst_rescaled_range(series)
        assert estimate == pytest.approx(0.55, abs=0.12)

    def test_lrd_estimate_higher_than_iid(self):
        iid = hurst_rescaled_range(np.random.default_rng(5).normal(size=2**13))
        lrd = hurst_rescaled_range(fractional_noise(0.9, 2**13, seed=5))
        assert lrd > iid

    def test_short_series_raises(self):
        with pytest.raises(ValueError):
            hurst_rescaled_range(np.ones(10))


class TestSegmentRegimes:
    def test_three_regimes_recovered(self):
        # build a synthetic VT plot directly from a composite series: periodic
        # (sub-tick) + random-walk-ish mid + iid long-term is hard to fake, so
        # just verify segmentation arithmetic on a real series
        series = np.tile([20.0, 0.0, 0.0, 0.0, 0.0], 40_000).astype(float)
        series += np.random.default_rng(6).normal(0, 0.5, series.size)
        plot = variance_time_plot(series, 0.01)
        regimes = segment_regimes(plot, boundaries=(0.05, 10.0),
                                  names=("a", "b", "c"))
        names = [r.name for r in regimes]
        assert "a" in names
        fit_a = next(r for r in regimes if r.name == "a")
        assert fit_a.hurst < 0.5

    def test_name_boundary_mismatch(self):
        series = np.random.default_rng(0).normal(size=10_000)
        plot = variance_time_plot(series, 0.01)
        with pytest.raises(ValueError):
            segment_regimes(plot, boundaries=(0.05,), names=("a", "b", "c"))

    def test_hurst_slope_relation(self):
        series = np.random.default_rng(7).normal(size=20_000)
        plot = variance_time_plot(series, 0.01)
        regimes = segment_regimes(plot, boundaries=(1.0,), names=("x", "y"))
        for regime in regimes:
            assert regime.hurst == pytest.approx(1.0 + regime.slope / 2.0)
