"""Contract tests on experiment outputs.

Each experiment module must expose a stable interface (id, title, run)
and produce well-formed outputs.  The bench suite validates the numbers;
these tests validate the contract cheaply, and run the two cheapest
experiments end-to-end as smoke coverage of the registry plumbing.
"""

import pytest

from repro.experiments.base import ExperimentOutput
from repro.experiments.runner import REGISTRY, run_experiments


class TestModuleContract:
    def test_ids_match_registry_keys(self):
        import importlib

        for experiment_id in REGISTRY:
            module = importlib.import_module(f"repro.experiments.{experiment_id}")
            assert module.EXPERIMENT_ID == experiment_id
            assert isinstance(module.TITLE, str) and module.TITLE
            assert callable(module.run)

    def test_registry_count(self):
        # 4 tables + 15 figures + 6 extension studies + fleet +
        # facilitynet + matchmaking + churn
        assert len(REGISTRY) == 29


class TestCheapExperimentsEndToEnd:
    @pytest.fixture(scope="class")
    def outputs(self):
        # table1 and fig3 share the cached week population and avoid any
        # packet-level generation: cheap enough for the unit suite
        return run_experiments(["table1", "fig3"], seed=0)

    def test_outputs_are_wellformed(self, outputs):
        for output in outputs:
            assert isinstance(output, ExperimentOutput)
            assert output.rows
            for row in output.rows:
                assert row.name
                assert row.tolerance_factor >= 1.0

    def test_render_includes_every_row(self, outputs):
        for output in outputs:
            text = output.render()
            assert output.experiment_id in text
            for row in output.rows:
                assert row.name in text

    def test_cheap_experiments_pass(self, outputs):
        for output in outputs:
            failing = [r.name for r in output.rows if not r.ok]
            assert output.passed, failing

    def test_row_lookup(self, outputs):
        table1 = outputs[0]
        assert table1.row("maps played").paper == 339
