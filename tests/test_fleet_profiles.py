"""Tests for heterogeneous fleet profile generation."""

import math

import pytest

from repro.fleet import FleetProfile, hosting_facility
from repro.gameserver.config import quick_test_profile


@pytest.fixture(scope="module")
def fleet() -> FleetProfile:
    return hosting_facility(n_servers=8, duration=1200.0, seed=3)


class TestHeterogeneity:
    def test_slots_drawn_from_choices(self, fleet):
        slots = {p.max_players for p in fleet.server_profiles()}
        assert slots <= set(fleet.slot_choices)
        assert len(slots) > 1  # 8 draws from 4 choices: variety expected

    def test_attempt_rate_scales_with_slots_and_popularity(self, fleet):
        base = fleet.base_profile
        for profile in fleet.server_profiles():
            implied_popularity = (
                profile.attempt_rate
                * base.max_players
                / (base.attempt_rate * profile.max_players)
            )
            assert 0.2 < implied_popularity < 5.0

    def test_timezone_phases_spread_within_bounds(self, fleet):
        half_spread = math.pi * fleet.timezone_spread_hours / 24.0
        phases = [p.diurnal_phase for p in fleet.server_profiles()]
        assert all(-half_spread <= phase <= half_spread for phase in phases)
        assert len(set(phases)) > 1

    def test_map_durations_drawn_from_choices(self, fleet):
        durations = {p.map_duration for p in fleet.server_profiles()}
        assert durations <= set(fleet.map_duration_choices)

    def test_addresses_unique_and_client_blocks_disjoint(self, fleet):
        profiles = fleet.server_profiles()
        addresses = [p.server_address.value for p in profiles]
        assert len(set(addresses)) == len(profiles)
        block = 1 << fleet.client_block_bits
        bases = sorted(p.client_address_base.value for p in profiles)
        assert all(b2 - b1 >= block for b1, b2 in zip(bases, bases[1:]))

    def test_horizon_override_and_outages_dropped(self, fleet):
        for profile in fleet.server_profiles():
            assert profile.duration == 1200.0
            assert profile.outages == ()  # the week's outages start later

    def test_horizon_defaults_to_base_profile(self):
        base = quick_test_profile(900.0)
        fleet = FleetProfile(n_servers=2, base_profile=base, seed=0)
        assert fleet.horizon == 900.0
        assert all(p.duration == 900.0 for p in fleet.server_profiles())


class TestDeterminism:
    def test_same_seed_same_profiles(self, fleet):
        again = hosting_facility(n_servers=8, duration=1200.0, seed=3)
        assert fleet.server_profiles() == again.server_profiles()

    def test_profiles_independent_of_fleet_size(self, fleet):
        # growing the fleet must not disturb existing servers
        bigger = hosting_facility(n_servers=12, duration=1200.0, seed=3)
        assert bigger.server_profiles()[:8] == fleet.server_profiles()

    def test_different_seed_different_fleet(self, fleet):
        other = hosting_facility(n_servers=8, duration=1200.0, seed=4)
        assert other.server_profiles() != fleet.server_profiles()

    def test_describe_lists_every_server(self, fleet):
        text = fleet.describe()
        assert len(text.splitlines()) == fleet.n_servers
        assert "slots" in text


class TestValidation:
    def test_rejects_bad_n_servers(self):
        with pytest.raises(ValueError):
            FleetProfile(n_servers=0)

    def test_rejects_empty_slot_choices(self):
        with pytest.raises(ValueError):
            FleetProfile(n_servers=2, slot_choices=())

    def test_rejects_negative_popularity_cv(self):
        with pytest.raises(ValueError):
            FleetProfile(n_servers=2, popularity_cv=-0.1)

    def test_rejects_map_duration_below_downtime(self):
        with pytest.raises(ValueError):
            FleetProfile(n_servers=2, map_duration_choices=(5.0,))

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            FleetProfile(n_servers=2, duration=0.0)

    def test_rejects_client_blocks_overflowing_ipv4_space(self):
        # 24.0.0.1 leaves ~232 blocks of 2^24; 300 servers cannot fit
        with pytest.raises(ValueError, match="overflow"):
            FleetProfile(n_servers=300, client_block_bits=24)

    def test_rejects_out_of_range_index(self):
        fleet = FleetProfile(n_servers=2)
        with pytest.raises(IndexError):
            fleet.server_profile(2)

    def test_popularity_cv_zero_disables_popularity(self):
        fleet = FleetProfile(
            n_servers=3, popularity_cv=0.0, slot_choices=(22,), duration=600.0
        )
        base = fleet.base_profile
        for profile in fleet.server_profiles():
            assert profile.attempt_rate == pytest.approx(base.attempt_rate)
