"""Unit tests for the buffering/capacity ablations and aggregation workloads."""

import numpy as np
import pytest

from repro.net.addresses import IPv4Address
from repro.router.ablation import (
    DEVICE_DELAY_BUDGET_S,
    buffer_sweep,
    buffering_helps_loss_but_not_experience,
    capacity_sweep,
)
from repro.router.device import DeviceProfile
from repro.trace.packet import Direction
from repro.trace.trace import TraceBuilder
from repro.workloads.aggregation import (
    aggregate_servers,
    offered_pps,
    required_capacity_linear,
)
from repro.workloads.scenarios import Scenario
from repro.gameserver.config import quick_test_profile

SERVER = IPv4Address("10.0.0.2")


def bursty_trace(duration=20.0, burst=20, in_rate=450.0, seed=0):
    """Tick bursts + Poisson inbound, the §IV workload shape."""
    rng = np.random.default_rng(seed)
    builder = TraceBuilder(server_address=SERVER)
    t = 0.0
    while t < duration:
        t += float(rng.exponential(1.0 / in_rate))
        if t < duration:
            builder.add(t, Direction.IN, 42, SERVER.value, 1000, 27015, 40)
    for tick in np.arange(0.05, duration, 0.05):
        for j in range(burst):
            builder.add(tick + 2e-4 * j, Direction.OUT, SERVER.value, 43,
                        27015, 1000, 130)
    return builder.build()


class TestBufferSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        trace = bursty_trace()
        # a loaded device: offered ~850 pps vs 900 pps engine
        profile = DeviceProfile(lookup_rate=900.0)
        return buffer_sweep(trace, queue_depths=(4, 16, 64, 256),
                            base_profile=profile, seed=1)

    def test_loss_monotone_down(self, sweep):
        losses = [p.inbound_loss + p.outbound_loss for p in sweep]
        assert losses[-1] < losses[0]

    def test_delay_monotone_up(self, sweep):
        delays = [p.p99_delay for p in sweep]
        assert delays[-1] > delays[0]

    def test_paper_verdict_on_loaded_device(self, sweep):
        assert buffering_helps_loss_but_not_experience(sweep)

    def test_budget_constant_sane(self):
        assert 0.0 < DEVICE_DELAY_BUDGET_S < 0.1

    def test_validation(self):
        trace = bursty_trace(duration=2.0)
        with pytest.raises(ValueError):
            buffer_sweep(trace, queue_depths=(0,))
        with pytest.raises(ValueError):
            buffering_helps_loss_but_not_experience(
                buffer_sweep(trace, queue_depths=(4,))
            )


class TestCapacitySweep:
    def test_loss_collapses_with_capacity(self):
        trace = bursty_trace()
        points = capacity_sweep(
            trace, lookup_rates=(600.0, 1250.0, 5000.0), seed=1
        )
        assert points[0].total_loss > points[-1].total_loss
        assert points[-1].total_loss < 0.01

    def test_delay_shrinks_with_capacity(self):
        trace = bursty_trace()
        points = capacity_sweep(
            trace, lookup_rates=(900.0, 5000.0), seed=1
        )
        assert points[-1].mean_delay < points[0].mean_delay

    def test_validation(self):
        with pytest.raises(ValueError):
            capacity_sweep(bursty_trace(duration=2.0), lookup_rates=(0.0,))


class TestAggregation:
    @pytest.fixture(scope="class")
    def scenario(self):
        return Scenario(quick_test_profile(duration=600.0), seed=2)

    def test_single_server_identity_shape(self, scenario):
        aggregate = aggregate_servers(scenario, 1, window_length=120.0,
                                      first_window_start=60.0)
        assert len(aggregate) > 0
        assert aggregate.timestamps[0] >= 0.0
        assert aggregate.timestamps[-1] <= 121.0

    def test_rate_scales_with_servers(self, scenario):
        one = aggregate_servers(scenario, 1, window_length=100.0,
                                first_window_start=60.0)
        two = aggregate_servers(scenario, 2, window_length=100.0,
                                first_window_start=60.0)
        ratio = len(two) / max(1, len(one))
        assert 1.3 < ratio < 3.0  # windows differ in population, ~2x

    def test_address_blocks_disjoint(self, scenario):
        aggregate = aggregate_servers(scenario, 2, window_length=100.0,
                                      first_window_start=60.0)
        server_value = aggregate.server_address.value
        client_addrs = np.where(
            aggregate.src_addrs == server_value,
            aggregate.dst_addrs, aggregate.src_addrs,
        ).astype(np.int64)
        blocks = set(client_addrs >> 20)
        assert len(blocks) == 2

    def test_timestamps_sorted(self, scenario):
        aggregate = aggregate_servers(scenario, 3, window_length=60.0,
                                      first_window_start=60.0)
        assert np.all(np.diff(aggregate.timestamps) >= 0)

    def test_offered_pps(self, scenario):
        aggregate = aggregate_servers(scenario, 1, window_length=100.0,
                                      first_window_start=60.0)
        assert offered_pps(aggregate, 100.0) == pytest.approx(
            len(aggregate) / 100.0
        )

    def test_validation(self, scenario):
        with pytest.raises(ValueError):
            aggregate_servers(scenario, 0)
        with pytest.raises(ValueError):
            aggregate_servers(scenario, 1, window_length=0.0)
        with pytest.raises(ValueError):
            offered_pps(None, 0.0)
        with pytest.raises(ValueError):
            required_capacity_linear(0.0, 2)
        with pytest.raises(ValueError):
            required_capacity_linear(100.0, 2, utilisation_target=0.0)

    def test_linear_rule(self):
        assert required_capacity_linear(800.0, 4, utilisation_target=0.8) == (
            pytest.approx(4000.0)
        )
