"""Unit tests for ServerProfile and the protocol payload models."""

import numpy as np
import pytest

from repro.gameserver.config import (
    OutageSpec,
    ServerProfile,
    olygamer_week,
    quick_test_profile,
)
from repro.gameserver.protocol import (
    CONTROL_PAYLOADS,
    MessageType,
    PayloadModel,
    ProtocolModel,
    solve_truncation_mu,
    truncated_normal_mean,
)


class TestServerProfile:
    def test_defaults_match_paper_constants(self):
        profile = olygamer_week()
        assert profile.tick_interval == 0.050
        assert profile.max_players == 22
        assert profile.map_duration == 1800.0
        assert profile.duration == pytest.approx(626_477.0)
        assert len(profile.outages) == 3

    def test_derived_rates(self):
        profile = olygamer_week()
        assert profile.ticks_per_second == pytest.approx(20.0)
        assert profile.nominal_client_pps_in == pytest.approx(
            1.0 / profile.client_update_interval
        )
        assert profile.nominal_client_pps_out == pytest.approx(
            20.0 * profile.snapshot_send_probability
        )

    def test_per_player_bandwidth_near_modem(self):
        profile = olygamer_week()
        bandwidth = profile.nominal_client_bandwidth_bps(overhead_bytes=54)
        # the modem clamp: ~40 kbps per player
        assert 33_000 <= bandwidth <= 48_000

    def test_replace_and_scaled(self):
        profile = olygamer_week()
        short = profile.scaled(3600.0)
        assert short.duration == 3600.0
        assert short.outages == ()
        assert short.max_players == profile.max_players

    def test_scaled_keeps_in_range_outages(self):
        profile = olygamer_week().replace(
            outages=(OutageSpec(start=100.0, duration=5.0),)
        )
        kept = profile.scaled(1000.0, keep_outages=True)
        assert len(kept.outages) == 1
        dropped = profile.scaled(50.0, keep_outages=True)
        assert dropped.outages == ()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("tick_interval", 0.0),
            ("max_players", 0),
            ("snapshot_send_probability", 1.5),
            ("new_client_probability", -0.1),
            ("duration", 0.0),
            ("map_change_downtime", 2000.0),
            ("link_classes", ()),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            olygamer_week().replace(**{field: value})

    def test_inverted_payload_bounds_rejected(self):
        with pytest.raises(ValueError):
            olygamer_week().replace(
                inbound_payload_min=80.0, inbound_payload_max=40.0
            )

    def test_quick_profile_is_small(self):
        profile = quick_test_profile()
        assert profile.duration <= 600.0
        assert profile.max_players <= 8

    def test_maps_in_horizon(self):
        assert olygamer_week().maps_in_horizon == 348


class TestTruncatedMean:
    def test_symmetric_window_no_shift(self):
        assert truncated_normal_mean(0.0, 1.0, -2.0, 2.0) == pytest.approx(0.0)

    def test_low_cut_raises_mean(self):
        assert truncated_normal_mean(100.0, 60.0, 28.0, 420.0) > 100.0

    def test_solver_hits_target(self):
        mu = solve_truncation_mu(129.5, 62.0, 28.0, 420.0)
        assert truncated_normal_mean(mu, 62.0, 28.0, 420.0) == pytest.approx(
            129.5, abs=1e-6
        )

    def test_solver_rejects_target_outside_window(self):
        with pytest.raises(ValueError):
            solve_truncation_mu(500.0, 60.0, 28.0, 420.0)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            truncated_normal_mean(0.0, 0.0, -1.0, 1.0)


class TestPayloadModel:
    def test_targeting_effective_mean(self, rng):
        model = PayloadModel.targeting(129.5, 62.0, 28.0, 420.0)
        assert model.effective_mean == pytest.approx(129.5, abs=1e-6)
        samples = model.sample(rng, size=100_000)
        assert samples.mean() == pytest.approx(129.5, rel=0.01)

    def test_samples_bounded_integers(self, rng):
        model = PayloadModel.targeting(39.7, 5.5, 24.0, 72.0)
        samples = model.sample(rng, size=10_000)
        assert samples.dtype == np.int64
        assert samples.min() >= 24
        assert samples.max() <= 72

    def test_scalar_sample(self, rng):
        model = PayloadModel.targeting(39.7, 5.5, 24.0, 72.0)
        value = model.sample(rng)
        assert isinstance(value, int)

    def test_scaled_clamps_to_window(self):
        model = PayloadModel(mean=100.0, std=10.0, minimum=50.0, maximum=150.0)
        assert model.scaled(10.0).mean == 150.0
        assert model.scaled(0.01).mean == 50.0

    def test_scaled_invalid_factor(self):
        model = PayloadModel(100.0, 10.0, 50.0, 150.0)
        with pytest.raises(ValueError):
            model.scaled(0.0)


class TestProtocolModel:
    def test_from_profile_hits_table3_means(self):
        protocol = ProtocolModel.from_profile(olygamer_week())
        assert protocol.client_update.effective_mean == pytest.approx(39.7, abs=0.01)
        assert protocol.server_snapshot.effective_mean == pytest.approx(
            129.5, abs=0.01
        )

    def test_control_payloads(self):
        protocol = ProtocolModel.from_profile(olygamer_week())
        assert protocol.control_payload(MessageType.DISCONNECT) == CONTROL_PAYLOADS[
            MessageType.DISCONNECT
        ]

    def test_unsized_message_rejected(self):
        protocol = ProtocolModel.from_profile(olygamer_week())
        with pytest.raises(ValueError):
            protocol.control_payload(MessageType.SERVER_SNAPSHOT)

    def test_inbound_smaller_than_outbound(self):
        protocol = ProtocolModel.from_profile(olygamer_week())
        assert (
            protocol.server_snapshot.effective_mean
            > 3.0 * protocol.client_update.effective_mean
        )
