"""Property-based tests on the traffic and device models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gameserver.admission import SlotTable
from repro.gameserver.downloads import TokenBucket
from repro.gameserver.protocol import solve_truncation_mu, truncated_normal_mean
from repro.router.cache import EvictionPolicy, RouteCache
from repro.sim.engine import EventScheduler
from repro.stats.fitting import fit_best, ks_statistic


class TestSlotTableProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        capacity=st.integers(1, 32),
        operations=st.lists(
            st.tuples(st.booleans(), st.integers(0, 40)), max_size=200
        ),
    )
    def test_occupancy_invariants(self, capacity, operations):
        table = SlotTable(capacity=capacity)
        held = set()
        for is_admit, session_id in operations:
            if is_admit and session_id not in held:
                if table.try_admit(session_id):
                    held.add(session_id)
            elif not is_admit and session_id in held:
                table.release(session_id)
                held.remove(session_id)
            assert 0 <= table.occupancy <= capacity
            assert table.occupancy == len(held)
        assert table.accepted_total + table.refused_total >= table.occupancy


class TestTokenBucketProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        rate=st.floats(10.0, 10_000.0),
        chunks=st.lists(st.floats(1.0, 400.0), min_size=1, max_size=50),
    )
    def test_long_run_rate_never_exceeded(self, rate, chunks):
        capacity = 500.0
        bucket = TokenBucket(rate=rate, capacity=capacity)
        now = 0.0
        total = 0.0
        for chunk in chunks:
            when = bucket.earliest_send(now, chunk)
            assert when >= now
            bucket.consume(when, chunk)
            now = when
            total += chunk
        # everything beyond the initial burst allowance respects the rate
        if now > 0:
            assert total <= capacity + rate * now + 1e-6

    @settings(max_examples=50, deadline=None)
    @given(
        rate=st.floats(10.0, 1000.0),
        t1=st.floats(0.0, 10.0),
        dt=st.floats(0.0, 10.0),
    )
    def test_earliest_send_monotone_in_time(self, rate, t1, dt):
        bucket = TokenBucket(rate=rate, capacity=100.0)
        bucket.consume(0.0, 100.0)
        early = bucket.earliest_send(t1, 50.0)
        late = bucket.earliest_send(t1 + dt, 50.0)
        assert late >= t1 + dt or late == pytest.approx(early)


class TestRouteCacheProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        capacity=st.integers(1, 32),
        policy=st.sampled_from(list(EvictionPolicy)),
        keys=st.lists(st.integers(0, 50), min_size=1, max_size=400),
    )
    def test_cache_invariants(self, capacity, policy, keys):
        cache = RouteCache(capacity, policy=policy)
        for key in keys:
            cache.access(key, size=40)
        assert len(cache) <= capacity
        stats = cache.stats
        assert stats.hits + stats.misses == len(keys)
        assert stats.insertions <= stats.misses
        assert stats.evictions <= stats.insertions

    @settings(max_examples=40, deadline=None)
    @given(keys=st.lists(st.integers(0, 5), min_size=10, max_size=300))
    def test_small_working_set_eventually_all_hits(self, keys):
        cache = RouteCache(8, policy=EvictionPolicy.LRU)
        for key in keys:
            cache.access(key)
        # working set of <= 6 keys fits in an 8-entry cache: the second
        # half of a long stream must be all hits
        for key in keys:
            assert cache.access(key)


class TestTruncationProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        target=st.floats(30.0, 300.0),
        sigma=st.floats(5.0, 80.0),
    )
    def test_solver_fixed_point(self, target, sigma):
        low, high = 20.0, 450.0
        if not low < target < high:
            return
        mu = solve_truncation_mu(target, sigma, low, high)
        assert truncated_normal_mean(mu, sigma, low, high) == pytest.approx(
            target, abs=1e-6
        )


class TestSchedulerProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        times=st.lists(
            st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=60
        )
    )
    def test_events_fire_in_time_order(self, times):
        scheduler = EventScheduler()
        fired = []
        for t in times:
            scheduler.schedule(t, lambda t=t: fired.append(scheduler.now))
        scheduler.run()
        assert fired == sorted(fired)
        assert len(fired) == len(times)


class TestFittingProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        scale=st.floats(0.1, 100.0),
    )
    def test_exponential_identified(self, seed, scale):
        samples = np.random.default_rng(seed).exponential(scale, 3000)
        fitted = fit_best(samples)
        assert fitted.family == "exponential"
        assert fitted.params["scale"] == pytest.approx(scale, rel=0.1)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_ks_statistic_bounded(self, seed):
        rng = np.random.default_rng(seed)
        samples = rng.normal(0, 1, 500)
        fitted = fit_best(samples, families=("normal",))
        assert 0.0 <= fitted.ks_statistic <= 1.0
        # self-fit KS must beat a grossly wrong CDF
        wrong = ks_statistic(samples, lambda x: np.clip(x / 1000.0 + 0.5, 0, 1))
        assert fitted.ks_statistic <= wrong
