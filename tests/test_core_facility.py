"""Tests for facility-level envelopes, multiplexing and marginal cost."""

import numpy as np
import pytest

from repro.core.facility import FacilityAnalysis, FacilityEnvelope, MultiplexingGain
from repro.gameserver.fluid import FluidSeries


def series_from_pps(pps, bin_size=1.0):
    counts = np.asarray(pps, dtype=float) * bin_size
    return FluidSeries(
        bin_size=bin_size,
        start_time=0.0,
        in_counts=counts / 2,
        out_counts=counts / 2,
        in_bytes=40.0 * counts / 2,
        out_bytes=130.0 * counts / 2,
    )


class TestFacilityEnvelope:
    def test_known_mean_and_max(self):
        envelope = FacilityEnvelope.from_series(
            series_from_pps([100, 100, 200, 0]), overhead_per_packet=0, percentile=100.0
        )
        assert envelope.mean_pps == pytest.approx(100.0)
        assert envelope.peak_pps == pytest.approx(200.0)
        # bytes/packet = (40+130)/2 = 85 -> bps = pps * 85 * 8
        assert envelope.mean_bandwidth_bps == pytest.approx(100.0 * 85.0 * 8.0)
        assert envelope.peak_to_mean_pps == pytest.approx(2.0)
        assert envelope.duration == pytest.approx(4.0)

    def test_overhead_adds_per_packet_bytes(self):
        plain = FacilityEnvelope.from_series(
            series_from_pps([100]), overhead_per_packet=0
        )
        wired = FacilityEnvelope.from_series(
            series_from_pps([100]), overhead_per_packet=50
        )
        assert wired.mean_bandwidth_bps == pytest.approx(
            plain.mean_bandwidth_bps + 100.0 * 50.0 * 8.0
        )

    def test_percentile_below_max(self):
        pps = np.concatenate([np.full(99, 100.0), [1000.0]])
        envelope = FacilityEnvelope.from_series(
            series_from_pps(pps), overhead_per_packet=0, percentile=50.0
        )
        assert envelope.peak_pps == pytest.approx(100.0)

    def test_rejects_empty_series_and_bad_percentile(self):
        with pytest.raises(ValueError):
            FacilityEnvelope.from_series(series_from_pps([]))
        with pytest.raises(ValueError):
            FacilityEnvelope.from_series(series_from_pps([1.0]), percentile=0.0)


class TestFacilityAnalysis:
    @pytest.fixture()
    def offset_peak_analysis(self):
        # two servers bursting at different times: aggregate is flat
        a = series_from_pps([100, 100, 300, 100])
        b = series_from_pps([300, 100, 100, 100])
        return FacilityAnalysis.from_series([a, b], overhead_per_packet=0,
                                            percentile=100.0)

    def test_aggregate_is_sum(self, offset_peak_analysis):
        assert np.array_equal(
            offset_peak_analysis.aggregate.total_counts, [400, 200, 400, 200]
        )
        assert offset_peak_analysis.n_servers == 2

    def test_multiplexing_gain_for_offset_peaks(self, offset_peak_analysis):
        multiplexing = offset_peak_analysis.multiplexing()
        assert isinstance(multiplexing, MultiplexingGain)
        # per-server: 300/150 = 2.0; aggregate: 400/300 = 1.33
        assert multiplexing.gain == pytest.approx(2.0 / (400.0 / 300.0))
        assert multiplexing.gain > 1.0
        # sum of peaks 300+300 vs true aggregate peak 400
        assert multiplexing.overbuild == pytest.approx(1.5)

    def test_provisioning_curve_and_marginal_cost(self, offset_peak_analysis):
        curve = offset_peak_analysis.provisioning_curve_bps()
        marginal = offset_peak_analysis.marginal_cost_bps()
        assert curve.shape == (2,)
        # first server alone peaks at 300 pps, the pair at 400 pps
        assert curve[0] == pytest.approx(300.0 * 85.0 * 8.0)
        assert curve[1] == pytest.approx(400.0 * 85.0 * 8.0)
        assert marginal[0] == pytest.approx(curve[0])
        assert marginal[1] == pytest.approx(curve[1] - curve[0])
        assert np.cumsum(marginal)[-1] == pytest.approx(curve[-1])

    def test_streaming_add_matches_from_series(self, offset_peak_analysis):
        a = series_from_pps([100, 100, 300, 100])
        b = series_from_pps([300, 100, 100, 100])
        streamed = FacilityAnalysis(overhead_per_packet=0, percentile=100.0)
        streamed.add_server(a).add_server(b)
        assert np.array_equal(
            streamed.aggregate.in_counts, offset_peak_analysis.aggregate.in_counts
        )
        assert streamed.provisioning_curve_bps() == pytest.approx(
            offset_peak_analysis.provisioning_curve_bps()
        )

    def test_empty_analysis_rejected(self):
        analysis = FacilityAnalysis()
        with pytest.raises(ValueError):
            analysis.envelope()
        with pytest.raises(ValueError):
            analysis.multiplexing()
        with pytest.raises(ValueError):
            analysis.provisioning_curve_bps()

    def test_default_overhead_is_wire_overhead(self):
        from repro.net.headers import OverheadModel, WIRE_OVERHEAD_UDP_V4

        analysis = FacilityAnalysis()
        assert analysis.overhead_per_packet == OverheadModel(
            WIRE_OVERHEAD_UDP_V4
        ).per_packet


class TestRecoveryStats:
    """Recovery trajectories around scripted demand events."""

    def test_basic_overshoot_and_settle(self):
        from repro.core.facility import RecoveryStats

        series = np.array(
            [10, 10, 10, 10, 30, 40, 30, 20, 11, 10, 10, 10, 10], dtype=float
        )
        stats = RecoveryStats.from_series(
            series, event_start=4, event_end=7,
            tolerance=0.15, settle_epochs=3,
        )
        assert stats.baseline == 10.0
        assert stats.overshoot == 30.0
        assert stats.undershoot == 0.0
        assert stats.peak_deviation == 30.0
        # epoch 7 (20) is out of band; 8..10 are the first 3-epoch
        # in-band run, starting 1 epoch after the event ends
        assert stats.time_to_baseline == 1
        assert stats.recovered

    def test_never_recovers(self):
        from repro.core.facility import RecoveryStats

        series = np.array([5.0, 5, 5, 50, 50, 50])
        stats = RecoveryStats.from_series(series, 3, 4)
        assert stats.time_to_baseline is None
        assert not stats.recovered
        assert stats.overshoot == 45.0

    def test_undershoot_side(self):
        from repro.core.facility import RecoveryStats

        series = np.array([20.0, 20, 20, 5, 8, 20, 20, 20, 20])
        stats = RecoveryStats.from_series(series, 3, 5)
        assert stats.undershoot == 15.0
        assert stats.overshoot == 0.0
        assert stats.time_to_baseline == 0

    def test_nan_epochs_carry_no_evidence(self):
        from repro.core.facility import RecoveryStats

        series = np.array(
            [10.0, np.nan, 10, 10, 40, np.nan, 12, np.nan, 10, 10]
        )
        stats = RecoveryStats.from_series(
            series, 4, 6, tolerance=0.3, settle_epochs=3
        )
        # baseline ignores the NaN; the settle scan treats NaN as
        # in-band, so epochs 6..8 settle immediately
        assert stats.baseline == 10.0
        assert stats.overshoot == 30.0
        assert stats.time_to_baseline == 0

    def test_event_running_to_horizon_never_recovers(self):
        from repro.core.facility import RecoveryStats

        series = np.array([5.0, 5, 5, 50, 50])
        stats = RecoveryStats.from_series(series, 3, 5)
        assert stats.time_to_baseline is None

    def test_validation(self):
        from repro.core.facility import RecoveryStats

        flat = np.ones(10)
        with pytest.raises(ValueError):
            RecoveryStats.from_series(np.ones((2, 5)), 1, 2)
        with pytest.raises(ValueError):
            RecoveryStats.from_series(flat, 0, 2)  # empty pre-window
        with pytest.raises(ValueError):
            RecoveryStats.from_series(flat, 5, 5)
        with pytest.raises(ValueError):
            RecoveryStats.from_series(flat, 5, 11)
        with pytest.raises(ValueError):
            RecoveryStats.from_series(flat, 2, 4, tolerance=0.0)
        with pytest.raises(ValueError):
            RecoveryStats.from_series(flat, 2, 4, settle_epochs=0)
        with pytest.raises(ValueError):
            RecoveryStats.from_series(
                np.array([np.nan, np.nan, 1.0, 1.0]), 2, 3
            )

    def test_zero_baseline_uses_absolute_band(self):
        from repro.core.facility import RecoveryStats

        series = np.array([0.0, 0, 0, 5, 0.05, 0.05, 0.05, 0])
        stats = RecoveryStats.from_series(
            series, 3, 4, tolerance=0.1, settle_epochs=3
        )
        assert stats.baseline == 0.0
        assert stats.time_to_baseline == 0
