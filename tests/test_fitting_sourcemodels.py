"""Unit tests for distribution fitting and the source-model pipeline."""

import numpy as np
import pytest

from repro.core.sourcemodels import (
    fit_direction,
    fit_source_model,
    regenerate,
    validate_model,
)
from repro.stats.fitting import (
    fit_best,
    fit_exponential,
    fit_lognormal,
    fit_normal,
    ks_statistic,
)
from repro.trace.packet import Direction


class TestFitting:
    def test_normal_recovers_parameters(self, rng):
        samples = rng.normal(100.0, 15.0, size=20_000)
        fitted = fit_normal(samples)
        assert fitted.params["mean"] == pytest.approx(100.0, abs=0.5)
        assert fitted.params["std"] == pytest.approx(15.0, abs=0.5)
        assert fitted.ks_statistic < 0.02

    def test_lognormal_recovers_parameters(self, rng):
        samples = rng.lognormal(2.0, 0.7, size=20_000)
        fitted = fit_lognormal(samples)
        assert fitted.params["mu"] == pytest.approx(2.0, abs=0.05)
        assert fitted.params["sigma"] == pytest.approx(0.7, abs=0.05)

    def test_exponential_recovers_scale(self, rng):
        samples = rng.exponential(3.5, size=20_000)
        fitted = fit_exponential(samples)
        assert fitted.params["scale"] == pytest.approx(3.5, rel=0.03)

    def test_fit_best_picks_right_family(self, rng):
        assert fit_best(rng.normal(50.0, 3.0, 5000)).family == "normal"
        assert fit_best(rng.exponential(2.0, 5000)).family == "exponential"
        assert fit_best(rng.lognormal(1.0, 1.2, 5000)).family == "lognormal"

    def test_fit_best_skips_invalid_support(self, rng):
        samples = rng.normal(0.0, 1.0, 2000)  # includes negatives
        fitted = fit_best(samples)
        assert fitted.family == "normal"

    def test_fitted_sampling_and_mean(self, rng):
        fitted = fit_normal(rng.normal(80.0, 10.0, 10_000))
        draws = np.asarray(fitted.sample(rng, size=20_000))
        assert draws.mean() == pytest.approx(fitted.mean, rel=0.02)

    def test_cdf_monotone(self, rng):
        for fitted in (
            fit_normal(rng.normal(0, 1, 1000)),
            fit_exponential(rng.exponential(1.0, 1000)),
            fit_lognormal(rng.lognormal(0, 1, 1000)),
        ):
            xs = np.linspace(-2, 10, 200)
            values = fitted.cdf(xs)
            assert np.all(np.diff(values) >= -1e-12)
            assert values[-1] <= 1.0 + 1e-12

    def test_ks_statistic_detects_mismatch(self, rng):
        samples = rng.exponential(1.0, 5000)
        good = fit_exponential(samples)
        bad = fit_normal(samples)
        assert good.ks_statistic < bad.ks_statistic

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            fit_normal(np.asarray([1.0]))
        with pytest.raises(ValueError):
            fit_lognormal(np.asarray([1.0, -1.0, 2.0]))
        with pytest.raises(ValueError):
            fit_exponential(np.asarray([-1.0, 1.0]))
        with pytest.raises(ValueError):
            ks_statistic(np.asarray([]), lambda x: x)
        with pytest.raises(ValueError):
            fit_best(rng.normal(0, 1, 100), families=("cauchy",))


class TestSourceModels:
    @pytest.fixture(scope="class")
    def model(self, quick_trace):
        window = quick_trace.time_slice(10.0, 110.0)
        return fit_source_model(window), window

    def test_outbound_periodic_inbound_not(self, model, quick_profile):
        fitted, _ = model
        assert fitted.outbound.is_periodic
        assert not fitted.inbound.is_periodic
        assert fitted.outbound.tick_period == pytest.approx(
            quick_profile.tick_interval, rel=0.15
        )

    def test_payload_means_recovered(self, model, quick_profile):
        fitted, window = model
        assert fitted.inbound.payload.mean == pytest.approx(
            float(window.inbound().payload_sizes.mean()), rel=0.02
        )
        assert fitted.outbound.payload.mean == pytest.approx(
            float(window.outbound().payload_sizes.mean()), rel=0.02
        )

    def test_describe_mentions_structure(self, model):
        fitted, _ = model
        text = fitted.describe()
        assert "tick" in text
        assert "pps" in text

    def test_regeneration_rates(self, model):
        fitted, _ = model
        synthetic = regenerate(fitted, duration=60.0, seed=5)
        in_rate = len(synthetic.inbound()) / 60.0
        out_rate = len(synthetic.outbound()) / 60.0
        assert in_rate == pytest.approx(fitted.inbound.rate, rel=0.15)
        assert out_rate == pytest.approx(fitted.outbound.rate, rel=0.15)

    def test_closure(self, model):
        fitted, window = model
        validation = validate_model(window, fitted, duration=60.0, seed=6)
        assert validation.passes(tolerance=0.2)

    def test_regeneration_reproducible(self, model):
        fitted, _ = model
        a = regenerate(fitted, 30.0, seed=7)
        b = regenerate(fitted, 30.0, seed=7)
        assert len(a) == len(b)
        assert np.allclose(a.timestamps, b.timestamps)

    def test_too_small_trace_rejected(self, quick_trace):
        tiny = quick_trace.time_slice(10.0, 10.2)
        with pytest.raises(ValueError):
            fit_direction(tiny, Direction.IN)

    def test_regenerate_validation(self, model):
        fitted, _ = model
        with pytest.raises(ValueError):
            regenerate(fitted, duration=0.0)
