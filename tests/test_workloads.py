"""Unit tests for workload builders: links, web traffic, scenarios."""

import numpy as np
import pytest

from repro.workloads.links import (
    LINK_CATALOGUE,
    LastMileLink,
    narrowest_link,
    saturation_report,
)
from repro.workloads.scenarios import Scenario, clear_scenario_cache, olygamer_scenario
from repro.workloads.web import WebTrafficModel, generate_web_packets, interleave_streams
from repro.gameserver.config import quick_test_profile


class TestLinks:
    def test_narrowest_is_modem(self):
        assert narrowest_link().name == "modem56k"

    def test_modem_saturated_by_game_demand(self):
        modem = LINK_CATALOGUE["modem56k"]
        assert modem.is_saturated_by(40_000.0)
        assert modem.supports(40_000.0)

    def test_dsl_not_saturated(self):
        assert not LINK_CATALOGUE["dsl"].is_saturated_by(40_000.0)

    def test_utilisation_math(self):
        link = LastMileLink("x", 100.0, 50.0, 0.01)
        assert link.utilisation(25.0) == pytest.approx(0.5)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            LINK_CATALOGUE["dsl"].utilisation(-1.0)

    def test_saturation_report_sorted_by_capacity(self):
        report = saturation_report(40_000.0)
        names = [name for name, _, _ in report]
        assert names[0] == "modem56k"
        effective = [LINK_CATALOGUE[n].effective_bps for n in names]
        assert effective == sorted(effective)


class TestWebTraffic:
    def test_generation_shapes(self, rng):
        keys, sizes = generate_web_packets(WebTrafficModel(), 10_000, rng)
        assert keys.shape == sizes.shape == (10_000,)
        assert keys.min() > 1_000_000

    def test_zipf_popularity_skew(self, rng):
        keys, _ = generate_web_packets(WebTrafficModel(), 50_000, rng)
        _, counts = np.unique(keys, return_counts=True)
        top_share = np.sort(counts)[::-1][:10].sum() / counts.sum()
        assert top_share > 0.3  # heavy-tailed popularity

    def test_bimodal_sizes(self, rng):
        model = WebTrafficModel(ack_fraction=0.4)
        _, sizes = generate_web_packets(model, 20_000, rng)
        ack_share = (sizes == model.ack_size).mean()
        assert ack_share == pytest.approx(0.4, abs=0.03)
        assert sizes.max() <= model.data_size_max

    def test_web_mean_far_above_game_mean(self, rng):
        _, sizes = generate_web_packets(WebTrafficModel(), 20_000, rng)
        assert sizes.mean() > 400.0  # the exchange-point contrast

    def test_zero_count(self, rng):
        keys, sizes = generate_web_packets(WebTrafficModel(), 0, rng)
        assert keys.size == 0

    def test_model_validation(self):
        with pytest.raises(ValueError):
            WebTrafficModel(destinations=0)
        with pytest.raises(ValueError):
            WebTrafficModel(zipf_s=1.0)
        with pytest.raises(ValueError):
            WebTrafficModel(ack_fraction=1.5)

    def test_interleave(self, rng):
        game_keys = np.arange(100)
        game_sizes = np.full(100, 40)
        web_keys, web_sizes = generate_web_packets(WebTrafficModel(), 100, rng)
        keys, sizes, labels = interleave_streams(
            rng, game_keys, game_sizes, web_keys, web_sizes
        )
        assert keys.size == 200
        assert (labels == "game").sum() == 100
        assert (labels == "web").sum() == 100

    def test_interleave_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            interleave_streams(
                rng, np.arange(2), np.arange(3), np.arange(2), np.arange(2)
            )


class TestScenario:
    def test_population_cached(self):
        scenario = Scenario(quick_test_profile(), seed=1)
        assert scenario.population is scenario.population

    def test_packet_window_cached_per_window(self):
        scenario = Scenario(quick_test_profile(), seed=1)
        a = scenario.packet_window(0.0, 30.0)
        b = scenario.packet_window(0.0, 30.0)
        c = scenario.packet_window(30.0, 60.0)
        assert a is b
        assert c is not a

    def test_clear_packet_windows(self):
        scenario = Scenario(quick_test_profile(), seed=1)
        a = scenario.packet_window(0.0, 30.0)
        scenario.clear_packet_windows()
        assert scenario.packet_window(0.0, 30.0) is not a

    def test_per_minute_is_rebinned_per_second(self):
        scenario = Scenario(quick_test_profile(), seed=1)
        per_second = scenario.per_second_series()
        per_minute = scenario.per_minute_series()
        assert per_minute.bin_size == 60.0
        kept = len(per_minute) * 60
        assert per_minute.total_counts.sum() == pytest.approx(
            per_second.total_counts[:kept].sum()
        )

    def test_global_cache(self):
        clear_scenario_cache()
        a = olygamer_scenario(seed=123)
        b = olygamer_scenario(seed=123)
        assert a is b
        clear_scenario_cache()
        assert olygamer_scenario(seed=123) is not a
