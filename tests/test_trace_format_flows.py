"""Unit tests for the compact trace format and flow extraction."""

import numpy as np
import pytest

from repro.net.addresses import IPv4Address
from repro.trace.flows import extract_flows, flow_bandwidths, unique_clients
from repro.trace.format import TraceFormatError, load_trace, save_trace
from repro.trace.packet import Direction
from repro.trace.trace import Trace, TraceBuilder

SERVER = IPv4Address("10.0.0.2")


def two_client_trace():
    """Two clients: one 60 s steady flow, one 10 s short flow."""
    builder = TraceBuilder(server_address=SERVER)
    c1 = IPv4Address("10.1.0.1").value
    c2 = IPv4Address("10.1.0.2").value
    for i in range(61):
        builder.add(float(i), Direction.IN, c1, SERVER.value, 1111, 27015, 40)
        builder.add(float(i) + 0.5, Direction.OUT, SERVER.value, c1, 27015, 1111, 130)
    for i in range(11):
        builder.add(float(i), Direction.IN, c2, SERVER.value, 2222, 27015, 40)
    return builder.build()


class TestCompactFormat:
    def test_roundtrip(self, tmp_path, synthetic_trace):
        path = str(tmp_path / "trace.npz")
        save_trace(synthetic_trace, path)
        loaded = load_trace(path)
        assert len(loaded) == len(synthetic_trace)
        assert np.array_equal(loaded.payload_sizes, synthetic_trace.payload_sizes)
        assert np.allclose(loaded.timestamps, synthetic_trace.timestamps)
        assert loaded.server_address == synthetic_trace.server_address
        assert loaded.overhead.per_packet == synthetic_trace.overhead.per_packet

    @pytest.mark.parametrize("compressed", [True, False])
    def test_compression_modes(self, tmp_path, synthetic_trace, compressed):
        path = str(tmp_path / "trace.npz")
        save_trace(synthetic_trace, path, compressed=compressed)
        assert len(load_trace(path)) == len(synthetic_trace)

    def test_server_address_override(self, tmp_path, synthetic_trace):
        path = str(tmp_path / "trace.npz")
        save_trace(synthetic_trace, path)
        loaded = load_trace(path, server_address=IPv4Address("1.2.3.4"))
        assert loaded.server_address == IPv4Address("1.2.3.4")

    def test_missing_metadata_rejected(self, tmp_path, synthetic_trace):
        path = str(tmp_path / "bad.npz")
        np.savez(path, timestamps=synthetic_trace.timestamps)
        with pytest.raises(TraceFormatError, match="metadata"):
            load_trace(path)

    def test_empty_trace_roundtrip(self, tmp_path):
        path = str(tmp_path / "empty.npz")
        save_trace(Trace.empty(server_address=SERVER), path)
        assert len(load_trace(path)) == 0


class TestFlows:
    def test_flow_count_and_ordering(self):
        flows = extract_flows(two_client_trace())
        assert len(flows) == 2
        assert flows[0].client == IPv4Address("10.1.0.1")

    def test_flow_stats(self):
        flows = extract_flows(two_client_trace())
        long_flow = flows[0]
        assert long_flow.packets_in == 61
        assert long_flow.packets_out == 61
        assert long_flow.payload_bytes_in == 61 * 40
        assert long_flow.payload_bytes_out == 61 * 130
        assert long_flow.duration == pytest.approx(60.5)

    def test_flow_bandwidth_math(self):
        flows = extract_flows(two_client_trace())
        flow = flows[0]
        expected = 8.0 * flow.wire_bytes / flow.duration
        assert flow.mean_bandwidth_bps == pytest.approx(expected)

    def test_min_duration_filter(self):
        bandwidths = flow_bandwidths(two_client_trace(), min_duration=30.0)
        assert bandwidths.size == 1  # the 10 s flow is excluded

    def test_zero_duration_flow_zero_bandwidth(self):
        builder = TraceBuilder(server_address=SERVER)
        builder.add(1.0, Direction.IN, 42, SERVER.value, 5, 27015, 40)
        flows = extract_flows(builder.build())
        assert flows[0].mean_bandwidth_bps == 0.0

    def test_empty_trace_no_flows(self):
        assert extract_flows(Trace.empty()) == []

    def test_unique_clients(self):
        counts = unique_clients(two_client_trace())
        assert len(counts) == 2
        assert counts[IPv4Address("10.1.0.1").value] == 122
        assert counts[IPv4Address("10.1.0.2").value] == 11

    def test_same_client_different_ports_distinct_flows(self):
        builder = TraceBuilder(server_address=SERVER)
        addr = IPv4Address("10.1.0.9").value
        for i in range(40):
            builder.add(float(i), Direction.IN, addr, SERVER.value, 1000, 27015, 40)
            builder.add(float(i), Direction.IN, addr, SERVER.value, 2000, 27015, 40)
        flows = extract_flows(builder.build())
        assert len(flows) == 2
        assert {f.client_port for f in flows} == {1000, 2000}
