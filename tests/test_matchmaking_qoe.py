"""QoE coupling + scripted scenarios: off is bit-identical, on is parity.

The coupling contract has two halves.  Off (the default), every knob in
:class:`QoeConfig` and every scenario hook must be invisible — a run is
bit-identical to one built before the knobs existed, and the traced
artifacts carry no QoE fields.  On, the scalar and columnar engines must
stay bit-identical to *each other* across every stock policy, every
stock scenario, worker counts and warm/cold shard caches — the PR-8
parity suites extended through the coupled path.  Alongside: the
scenario machinery's compile-time validation and drain semantics,
epoch-granular retry timing at the horizon boundary, the
``latency_aware`` degenerate placement, the ``for_fleet``
base-profile-override fix and the fleet-scale ``RttMatrix.describe``
truncation.
"""

import numpy as np
import pytest

from repro import obs
from repro.fleet.cache import ShardCache
from repro.fleet.profiles import hosting_facility
from repro.fleet.scenario import FleetScenario
from repro.matchmaking import (
    POLICIES,
    SCENARIOS,
    DemandEvent,
    DemandScenario,
    FlashCrowd,
    LatencyAwarePolicy,
    PatchDayStorm,
    PoolConfig,
    QoeConfig,
    RegionalOutage,
    RttMatrix,
    make_scenario,
    simulate_matchmaking,
)

POLICY_NAMES = sorted(POLICIES)
SCENARIO_NAMES = sorted(SCENARIOS)


def _scenario(
    seed=3,
    n_servers=3,
    duration=900.0,
    demand_ratio=3.0,
    session_duration_mean=180.0,
    session_duration_min=5.0,
    **overrides,
):
    fleet = hosting_facility(n_servers=n_servers, duration=duration, seed=seed)
    config = PoolConfig.for_fleet(
        fleet,
        demand_ratio=demand_ratio,
        epoch_length=60.0,
        session_duration_mean=session_duration_mean,
        session_duration_min=session_duration_min,
        **overrides,
    )
    rtt = RttMatrix.for_fleet(fleet, config.region_profile, seed=seed)
    return fleet, config, rtt


def _assert_identical(a, b):
    """Bit-identity across every field of two MatchmakingResults."""
    np.testing.assert_array_equal(a.occupancy, b.occupancy)
    np.testing.assert_array_equal(a.per_server_attempts, b.per_server_attempts)
    np.testing.assert_array_equal(
        a.per_server_rejections, b.per_server_rejections
    )
    assert a.admission == b.admission
    assert a.sessions == b.sessions
    assert a.capacities == b.capacities
    assert a.repeat_assignments == b.repeat_assignments
    assert a.qoe_repeat_refusals == b.qoe_repeat_refusals
    assert a.scenario_name == b.scenario_name
    assert len(a.session_rtts) == len(b.session_rtts)
    for rtts_a, rtts_b in zip(a.session_rtts, b.session_rtts):
        np.testing.assert_array_equal(rtts_a, rtts_b)
    assert len(a.qoe_multipliers) == len(b.qoe_multipliers)
    for mults_a, mults_b in zip(a.qoe_multipliers, b.qoe_multipliers):
        np.testing.assert_array_equal(mults_a, mults_b)
    assert a.describe() == b.describe()


class TestQoeConfig:
    """Validation and the shape of the two coupling functions."""

    @pytest.mark.parametrize(
        "field,value",
        [
            ("rtt_good_ms", -1.0),
            ("rtt_good_ms", float("nan")),
            ("rtt_scale_ms", 0.0),
            ("rtt_scale_ms", float("inf")),
            ("duration_floor", 0.0),
            ("duration_floor", 1.5),
            ("balk_escalation", 0.0),
            ("balk_escalation", 1.0001),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            QoeConfig(**{field: value})

    def test_duration_multiplier_shape(self):
        qoe = QoeConfig(rtt_good_ms=60.0, rtt_scale_ms=120.0,
                        duration_floor=0.3)
        assert qoe.duration_multiplier(0.0) == 1.0
        assert qoe.duration_multiplier(60.0) == 1.0
        # strictly decreasing past the good threshold...
        samples = [qoe.duration_multiplier(ms) for ms in (61, 100, 200, 500)]
        assert all(a > b for a, b in zip(samples, samples[1:]))
        # ...toward (but never below) the floor
        assert all(0.3 < m < 1.0 for m in samples)
        assert qoe.duration_multiplier(1e9) == pytest.approx(0.3)

    def test_retry_probability_escalates(self):
        qoe = QoeConfig(balk_escalation=0.5)
        assert qoe.retry_probability(0.8, 0) == 0.8
        assert qoe.retry_probability(0.8, 1) == pytest.approx(0.4)
        assert qoe.retry_probability(0.8, 3) == pytest.approx(0.1)

    def test_default_is_disabled(self):
        assert QoeConfig().enabled is False
        assert PoolConfig.for_fleet(
            hosting_facility(n_servers=2, duration=600.0, seed=0)
        ).qoe.enabled is False


class TestQoeOffBitIdentity:
    """Disabled coupling is invisible, whatever the other knobs say."""

    @pytest.mark.parametrize("engine", ["scalar", "columnar"])
    def test_disabled_knobs_never_consulted(self, engine):
        fleet, config, rtt = _scenario()
        baseline = simulate_matchmaking(
            fleet, "capacity_aware", config, rtt=rtt, engine=engine
        )
        # extreme parameters, but enabled=False: bit-identical anyway
        loud = config.replace(
            qoe=QoeConfig(
                enabled=False,
                rtt_good_ms=0.0,
                rtt_scale_ms=1.0,
                duration_floor=0.01,
                balk_escalation=0.01,
            )
        )
        _assert_identical(
            baseline,
            simulate_matchmaking(
                fleet, "capacity_aware", loud, rtt=rtt, engine=engine
            ),
        )

    def test_off_run_has_no_qoe_artifacts(self, tmp_path):
        fleet, config, rtt = _scenario()
        obs.start_trace_session(tmp_path / "trace", seed=3)
        try:
            result = simulate_matchmaking(
                fleet, "least_loaded", config, rtt=rtt
            )
        finally:
            obs.end_trace_session()
        assert result.qoe_multipliers == ()
        assert result.qoe_repeat_refusals == 0
        assert result.scenario_name is None
        rows = obs.read_jsonl(tmp_path / "trace" / "matchmaking_epochs.jsonl")
        assert rows
        for row in rows:
            assert "qoe_mean_multiplier" not in row
            assert "effective_capacity" not in row
        from repro.obs.export import load_manifest

        manifest = load_manifest(tmp_path / "trace")
        # the registry keeps keys registered across resets (values are
        # zeroed per traced run), so earlier coupled runs in the same
        # process may leave matchmaking.qoe.* keys behind — what an
        # off-run must never do is put a nonzero total in them
        for key, value in manifest["metrics"].items():
            if not key.startswith("matchmaking.qoe."):
                continue
            if isinstance(value, dict):  # histogram dump
                assert not value["count"], key
            else:
                assert not value, key


def _coupled(policy, scenario_name, engine, seed=3, **kwargs):
    fleet, config, rtt = _scenario(seed=seed, **kwargs)
    config = config.replace(qoe=QoeConfig(enabled=True))
    scenario = make_scenario(scenario_name, config.n_epochs)
    return simulate_matchmaking(
        fleet, policy, config, rtt=rtt, scenario=scenario, engine=engine
    )


class TestCoupledParity:
    """QoE + scenario on: both engines bit-identical, every policy."""

    @pytest.mark.parametrize("scenario_name", SCENARIO_NAMES)
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_policy_scenario_bit_identical(self, policy, scenario_name):
        scalar = _coupled(policy, scenario_name, "scalar")
        columnar = _coupled(policy, scenario_name, "columnar")
        _assert_identical(scalar, columnar)
        assert scalar.scenario_name == scenario_name

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_deep_outage_careful_path_parity(self, policy):
        # two of three servers hard-down mid-run: occupancy exceeds the
        # reduced effective capacity while sessions drain, the regime
        # the columnar engine's careful slot accounting serves
        fleet, config, rtt = _scenario(session_duration_mean=400.0)
        config = config.replace(qoe=QoeConfig(enabled=True))
        scenario = DemandScenario(
            "deep_outage",
            (RegionalOutage(5, 10, servers=(0, 1), capacity_scale=0.0),),
        )
        scalar = simulate_matchmaking(
            fleet, policy, config, rtt=rtt, scenario=scenario,
            engine="scalar",
        )
        columnar = simulate_matchmaking(
            fleet, policy, config, rtt=rtt, scenario=scenario,
            engine="columnar",
        )
        _assert_identical(scalar, columnar)
        # the event really put occupancy above effective capacity
        assert np.any(scalar.occupancy[:2, 5:10] > 0)

    def test_custom_weights_coupled_parity(self):
        policy = LatencyAwarePolicy(alpha=2.0, beta=0.25)
        _assert_identical(
            _coupled(policy, "regional_outage", "scalar"),
            _coupled(policy, "regional_outage", "columnar"),
        )

    def test_qoe_without_scenario_parity(self):
        fleet, config, rtt = _scenario()
        config = config.replace(qoe=QoeConfig(enabled=True))
        _assert_identical(
            simulate_matchmaking(
                fleet, "capacity_aware", config, rtt=rtt, engine="scalar"
            ),
            simulate_matchmaking(
                fleet, "capacity_aware", config, rtt=rtt, engine="columnar"
            ),
        )

    def test_scenario_without_qoe_parity(self):
        fleet, config, rtt = _scenario()
        scenario = make_scenario("regional_outage", config.n_epochs)
        _assert_identical(
            simulate_matchmaking(
                fleet, "least_loaded", config, rtt=rtt,
                scenario=scenario, engine="scalar",
            ),
            simulate_matchmaking(
                fleet, "least_loaded", config, rtt=rtt,
                scenario=scenario, engine="columnar",
            ),
        )

    def test_coupling_actually_changes_placement(self):
        fleet, config, rtt = _scenario()
        coupled = config.replace(qoe=QoeConfig(enabled=True))
        off = simulate_matchmaking(fleet, "capacity_aware", config, rtt=rtt)
        on = simulate_matchmaking(fleet, "capacity_aware", coupled, rtt=rtt)
        assert not np.array_equal(off.occupancy, on.occupancy)
        mults = np.concatenate([m for m in on.qoe_multipliers if m.size])
        assert mults.size == on.admission.admitted
        assert float(mults.min()) < 1.0
        assert np.all(mults > 0.0) and np.all(mults <= 1.0)


class TestCoupledDownstreamParity:
    """A coupled result feeds the sharded fleet stage identically."""

    @pytest.fixture(scope="class")
    def coupled_result(self):
        return _coupled(
            "least_loaded", "regional_outage", "columnar",
            n_servers=4, duration=600.0,
        )

    def _series_equal(self, a, b):
        return all(
            np.array_equal(np.asarray(getattr(a, f)), np.asarray(getattr(b, f)))
            for f in ("in_counts", "out_counts", "in_bytes", "out_bytes")
        )

    @pytest.mark.parametrize("workers", [1, 4])
    def test_workers_bit_identical(self, coupled_result, workers):
        serial = FleetScenario.from_matchmaking(
            coupled_result
        ).aggregate_per_second(workers=1)
        sharded = FleetScenario.from_matchmaking(
            coupled_result
        ).aggregate_per_second(workers=workers)
        assert self._series_equal(serial, sharded)

    def test_warm_cache_replays_bit_identically(self, coupled_result, tmp_path):
        cache = ShardCache(tmp_path / "shards")
        cold = FleetScenario.from_matchmaking(
            coupled_result, cache=cache
        ).aggregate_per_second(workers=1)
        warm_cache = ShardCache(tmp_path / "shards")
        warm = FleetScenario.from_matchmaking(
            coupled_result, cache=warm_cache
        ).aggregate_per_second(workers=1)
        assert warm_cache.stats.hits == coupled_result.n_servers
        assert warm_cache.stats.stores == 0
        assert self._series_equal(cold, warm)


class TestScenarios:
    """Scenario compilation, validation and drain semantics."""

    def test_event_window_validation(self):
        with pytest.raises(ValueError):
            FlashCrowd(-1, 5)
        with pytest.raises(ValueError):
            FlashCrowd(5, 5)
        with pytest.raises(ValueError):
            RegionalOutage(0, 5)  # needs region or servers
        with pytest.raises(ValueError):
            RegionalOutage(0, 5, region="eu", capacity_scale=1.5)
        with pytest.raises(ValueError):
            DemandScenario("empty", ())

    def test_compile_rejects_unknown_names(self):
        fleet, config, rtt = _scenario()
        bad_region = DemandScenario(
            "x", (FlashCrowd(1, 3, regions=("atlantis",)),)
        )
        with pytest.raises(ValueError, match="atlantis"):
            bad_region.compile(
                config.n_epochs, rtt.region_names, rtt.server_regions
            )
        bad_server = DemandScenario(
            "y", (RegionalOutage(1, 3, servers=(99,)),)
        )
        with pytest.raises(ValueError, match="99"):
            bad_server.compile(
                config.n_epochs, rtt.region_names, rtt.server_regions
            )
        bare = DemandScenario("z", (DemandEvent(1, 3),))
        with pytest.raises(TypeError):
            bare.compile(config.n_epochs, rtt.region_names, rtt.server_regions)

    def test_make_scenario_unknown_name(self):
        with pytest.raises(KeyError):
            make_scenario("tsunami", 30)

    def test_outage_drains_without_eviction(self):
        # every server down for a window: no *new* sessions start inside
        # it, but live sessions play out (occupancy decays, never jumps
        # to zero) and configured capacity is still respected
        fleet, config, rtt = _scenario(
            demand_ratio=1.0, session_duration_mean=300.0
        )
        n = config.n_epochs
        start, end = 6, 9
        outage = DemandScenario(
            "total_outage",
            (RegionalOutage(
                start, end,
                servers=tuple(range(fleet.n_servers)),
                capacity_scale=0.0,
            ),),
        )
        result = simulate_matchmaking(
            fleet, "least_loaded", config, rtt=rtt, scenario=outage
        )
        epoch = config.epoch_length
        for server_sessions in result.sessions:
            for record in server_sessions:
                assert not (start * epoch <= record.start < end * epoch)
        total = result.total_occupancy_series()
        assert total[start - 1] > 0  # something to drain
        # strictly no admissions => occupancy is non-increasing in-window
        assert all(
            total[k + 1] <= total[k] for k in range(start - 1, end - 1)
        )
        assert np.all(
            result.occupancy <= np.asarray(result.capacities)[:, None]
        )

    def test_flash_crowd_raises_attempts(self):
        fleet, config, rtt = _scenario(demand_ratio=0.8)
        base = simulate_matchmaking(fleet, "least_loaded", config, rtt=rtt)
        crowd = simulate_matchmaking(
            fleet, "least_loaded", config, rtt=rtt,
            scenario=make_scenario("flash_crowd", config.n_epochs),
        )
        assert crowd.admission.attempts > base.admission.attempts

    def test_patch_day_forces_downloads(self):
        fleet, config, rtt = _scenario(demand_ratio=1.0)
        n = config.n_epochs
        storm = DemandScenario(
            "storm", (PatchDayStorm(2, n, rate_scale=1.5),)
        )
        result = simulate_matchmaking(
            fleet, "least_loaded", config, rtt=rtt, scenario=storm
        )
        epoch = config.epoch_length
        in_storm = [
            record
            for server_sessions in result.sessions
            for record in server_sessions
            if record.start >= 2 * epoch
        ]
        assert in_storm
        assert all(record.wants_download for record in in_storm)

    def test_compiled_capacities_identity_off_event(self):
        fleet, config, rtt = _scenario()
        scenario = DemandScenario(
            "one_down", (RegionalOutage(4, 8, servers=(1,)),)
        )
        compiled = scenario.compile(
            config.n_epochs, rtt.region_names, rtt.server_regions
        )
        capacities = np.asarray(
            [fleet.server_profile(i).max_players for i in range(3)],
            dtype=np.int64,
        )
        # outside the event the *same object* comes back
        assert compiled.capacities_at(0, capacities) is capacities
        inside = compiled.capacities_at(4, capacities)
        assert inside is not capacities
        assert inside[1] == 0
        assert inside[0] == capacities[0] and inside[2] == capacities[2]
        assert compiled.any_capacity_modulation

    def test_stock_outage_region_may_be_absent(self):
        # the stock regional_outage targets "eu"; a fleet whose servers
        # all live elsewhere compiles to a demand-only perturbation
        # rather than erroring (the region *name* is valid)
        fleet, config, rtt = _scenario()
        scenario = make_scenario("regional_outage", config.n_epochs)
        compiled = scenario.compile(
            config.n_epochs, rtt.region_names, rtt.server_regions
        )
        if not np.any(
            rtt.server_regions == rtt.region_names.index("eu")
        ):
            assert not compiled.any_capacity_modulation


class TestQoeObservability:
    """Coupled runs annotate the epoch stream and bump qoe counters."""

    def test_stream_and_counters(self, tmp_path):
        fleet, config, rtt = _scenario()
        config = config.replace(qoe=QoeConfig(enabled=True))
        scenario = make_scenario("flash_crowd", config.n_epochs)
        obs.start_trace_session(tmp_path / "trace", seed=3)
        try:
            result = simulate_matchmaking(
                fleet, "capacity_aware", config, rtt=rtt, scenario=scenario
            )
        finally:
            obs.end_trace_session()
        rows = obs.read_jsonl(tmp_path / "trace" / "matchmaking_epochs.jsonl")
        assert len(rows) == config.n_epochs
        for row in rows:
            assert 0.0 < row["qoe_mean_multiplier"] <= 1.0
            assert row["qoe_sessions_shortened"] >= 0
            assert row["qoe_repeat_refusals"] >= 0
            assert row["effective_capacity"] == row["capacity"]
        assert sum(r["qoe_repeat_refusals"] for r in rows) == (
            result.qoe_repeat_refusals
        )
        from repro.obs.export import load_manifest

        manifest = load_manifest(tmp_path / "trace")
        metrics = manifest["metrics"]
        assert metrics["matchmaking.qoe.sessions"] == (
            result.admission.admitted
        )
        assert metrics["matchmaking.qoe.repeat_refusals"] == (
            result.qoe_repeat_refusals
        )
        assert "matchmaking.qoe.sessions_shortened" in metrics

    def test_effective_capacity_tracks_outage(self, tmp_path):
        fleet, config, rtt = _scenario()
        start, end = 4, 9
        scenario = DemandScenario(
            "one_down", (RegionalOutage(start, end, servers=(1,)),)
        )
        obs.start_trace_session(tmp_path / "trace", seed=3)
        try:
            simulate_matchmaking(
                fleet, "least_loaded", config, rtt=rtt, scenario=scenario
            )
        finally:
            obs.end_trace_session()
        rows = obs.read_jsonl(tmp_path / "trace" / "matchmaking_epochs.jsonl")
        dips = [r for r in rows if r["effective_capacity"] < r["capacity"]]
        assert dips
        for row in rows:
            # qoe is off: scenario fields present, qoe fields absent
            assert "qoe_mean_multiplier" not in row
        assert {r["epoch"] for r in dips} == set(range(start, end))


class TestRetryHorizonBoundary:
    """Epoch-granular retries stop cleanly at the horizon."""

    def test_huge_delay_schedules_nothing(self):
        # a retry drawn past the horizon is a balk, not a pending event
        fleet, config, rtt = _scenario(retry_delay_mean=1e9)
        for engine in ("scalar", "columnar"):
            result = simulate_matchmaking(
                fleet, "capacity_aware", config, rtt=rtt, engine=engine
            )
            assert result.admission.retried == 0
            assert result.admission.rejected > 0
            assert result.admission.balked == result.admission.rejected

    @pytest.mark.parametrize("engine", ["scalar", "columnar"])
    @pytest.mark.parametrize("policy", ["least_loaded", "sticky", "random"])
    def test_prefix_occupancy_unchanged_by_horizon(self, engine, policy):
        # epochs share per-epoch RNG streams, so for non-retrying
        # policies a longer horizon replays the shorter run's occupancy
        # prefix exactly — nothing scheduled past the boundary reaches
        # back inside it
        short_fleet, short_config, rtt = _scenario(duration=600.0)
        long_fleet, long_config, long_rtt = _scenario(duration=1200.0)
        np.testing.assert_array_equal(rtt.matrix, long_rtt.matrix)
        short = simulate_matchmaking(
            short_fleet, policy, short_config, rtt=rtt, engine=engine
        )
        extended = simulate_matchmaking(
            long_fleet, policy, long_config, rtt=long_rtt, engine=engine
        )
        n_short = short.n_epochs
        np.testing.assert_array_equal(
            short.occupancy, extended.occupancy[:, :n_short]
        )

    def test_retry_horizon_decision_is_the_only_prefix_channel(self):
        # capacity_aware is the one retrying policy: a retry drawn past
        # the short horizon balks there but waits in the long run, so
        # the player's *later in-prefix attempts* may differ — the
        # documented epoch-granular boundary semantics.  Disabling
        # retries must restore exact prefix equality.
        short_fleet, short_config, rtt = _scenario(
            duration=600.0, retry_probability=0.0
        )
        long_fleet, long_config, long_rtt = _scenario(
            duration=1200.0, retry_probability=0.0
        )
        short = simulate_matchmaking(
            short_fleet, "capacity_aware", short_config, rtt=rtt
        )
        extended = simulate_matchmaking(
            long_fleet, "capacity_aware", long_config, rtt=long_rtt
        )
        assert short.admission.retried == 0
        np.testing.assert_array_equal(
            short.occupancy, extended.occupancy[:, : short.n_epochs]
        )


class TestLatencyAwareDegenerate:
    """alpha=0, beta=0: constant score, argmax picks lowest open index."""

    def test_places_at_lowest_open_index(self):
        fleet, config, rtt = _scenario()
        degenerate = simulate_matchmaking(
            fleet, LatencyAwarePolicy(alpha=0.0, beta=0.0), config, rtt=rtt
        )
        # with a constant score over open servers, every admission goes
        # to the lowest-index server with a free slot — so whenever a
        # session starts on server s, every lower-index server is full
        # at that instant; verify via the epoch trace: server 0 fills
        # first and only then do higher servers admit
        first_starts = [
            min((r.start for r in sessions), default=np.inf)
            for sessions in degenerate.sessions
        ]
        assert first_starts[0] <= first_starts[1] <= first_starts[2]
        # and the scalar/columnar engines agree on the degenerate case
        _assert_identical(
            degenerate,
            simulate_matchmaking(
                fleet, LatencyAwarePolicy(alpha=0.0, beta=0.0), config,
                rtt=rtt, engine="scalar",
            ),
        )


class TestForFleetBaseProfile:
    """Satellite fix: a base_profile override is effective everywhere."""

    def test_durations_follow_override(self):
        from repro.gameserver.config import ServerProfile

        fleet = hosting_facility(n_servers=2, duration=600.0, seed=0)
        override = ServerProfile(
            session_duration_mean=1234.0, session_duration_cv=0.5
        )
        config = PoolConfig.for_fleet(fleet, base_profile=override)
        assert config.base_profile is override
        assert config.session_duration_mean == 1234.0
        assert config.session_duration_cv == 0.5

    def test_calibration_uses_override_mean(self):
        from repro.gameserver.config import ServerProfile

        fleet = hosting_facility(n_servers=2, duration=600.0, seed=0)
        short = PoolConfig.for_fleet(
            fleet,
            base_profile=ServerProfile(session_duration_mean=100.0),
        )
        long = PoolConfig.for_fleet(
            fleet,
            base_profile=ServerProfile(session_duration_mean=1000.0),
        )
        # same demand ratio: shorter sessions need a higher attempt rate
        assert short.attempt_rate_per_player == pytest.approx(
            10.0 * long.attempt_rate_per_player
        )


class TestRttDescribeTruncation:
    """Satellite fix: describe() stays readable at fleet scale."""

    def _matrix(self, n_servers):
        fleet = hosting_facility(
            n_servers=n_servers, duration=600.0, seed=3
        )
        config = PoolConfig.for_fleet(fleet)
        return RttMatrix.for_fleet(fleet, config.region_profile, seed=3)

    def test_small_matrix_prints_every_server(self):
        text = self._matrix(6).describe()
        lines = text.splitlines()
        assert len(lines) == 1 + 6
        assert "omitted" not in text
        assert lines[0].endswith("4 regions x 6 servers")

    def test_large_matrix_truncates_with_count(self):
        matrix = self._matrix(40)
        text = matrix.describe()
        lines = text.splitlines()
        # header + 12 server rows + one ellipsis line
        assert len(lines) == 1 + 12 + 1
        assert "... (28 servers omitted) ..." in text
        assert "server  0 " in text and "server 39 " in text
        assert lines[0].endswith("x 40 servers")

    def test_max_servers_knob(self):
        matrix = self._matrix(10)
        assert len(matrix.describe(max_servers=4).splitlines()) == 1 + 4 + 1
        assert len(matrix.describe(max_servers=10).splitlines()) == 1 + 10
        with pytest.raises(ValueError):
            matrix.describe(max_servers=1)


class TestDescribeWarmupCut:
    """Satellite fix: describe(after=) matches the experiment tables."""

    def test_after_changes_reported_stats(self):
        fleet, config, rtt = _scenario(duration=1200.0)
        result = simulate_matchmaking(fleet, "least_loaded", config, rtt=rtt)
        full = result.describe()
        cut = result.describe(after=600.0)
        assert full != cut
        # the cut line reports post-warmup utilization and RTT
        stats = result.occupancy_stats(after=600.0)
        assert f"utilization {stats.utilization:5.1%}" in cut

    def test_after_zero_is_the_old_output(self):
        fleet, config, rtt = _scenario()
        result = simulate_matchmaking(fleet, "least_loaded", config, rtt=rtt)
        assert result.describe() == result.describe(after=0.0)
