"""Property-based tests (hypothesis) on codecs, formats and estimators."""

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net.addresses import IPv4Address, MACAddress
from repro.net.checksum import internet_checksum, verify_checksum
from repro.net.ethernet import EthernetHeader
from repro.net.headers import OverheadModel
from repro.net.ip import IPv4Header
from repro.net.udp import build_udp_datagram, parse_udp_datagram
from repro.stats.binning import bin_events
from repro.stats.histogram import EmpiricalCDF, histogram
from repro.stats.hurst import variance_time_plot
from repro.stats.regression import fit_line
from repro.trace.packet import Direction
from repro.trace.pcap import read_pcap, write_pcap
from repro.trace.trace import TraceBuilder

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF)
macs = st.integers(min_value=0, max_value=0xFFFFFFFFFFFF)
ports = st.integers(min_value=0, max_value=0xFFFF)
payload_sizes = st.integers(min_value=0, max_value=1400)


class TestCodecProperties:
    @given(value=addresses)
    def test_ipv4_string_roundtrip(self, value):
        addr = IPv4Address(value)
        assert IPv4Address(str(addr)) == addr
        assert IPv4Address(addr.packed) == addr

    @given(value=macs)
    def test_mac_roundtrip(self, value):
        mac = MACAddress(value)
        assert MACAddress(str(mac)) == mac
        assert MACAddress(mac.packed) == mac

    @given(data=st.binary(max_size=200))
    def test_checksum_self_verifies(self, data):
        checksum = internet_checksum(data)
        padded = data + b"\x00" if len(data) % 2 else data
        assert verify_checksum(padded + checksum.to_bytes(2, "big"))

    @given(dst=macs, src=macs, ethertype=st.integers(0, 0xFFFF))
    def test_ethernet_roundtrip(self, dst, src, ethertype):
        header = EthernetHeader(MACAddress(dst), MACAddress(src), ethertype)
        assert EthernetHeader.unpack(header.pack()) == header

    @given(
        src=addresses,
        dst=addresses,
        total_length=st.integers(20, 0xFFFF),
        ttl=st.integers(0, 255),
        protocol=st.integers(0, 255),
        identification=st.integers(0, 0xFFFF),
    )
    def test_ipv4_roundtrip(self, src, dst, total_length, ttl, protocol,
                            identification):
        header = IPv4Header(
            src=IPv4Address(src),
            dst=IPv4Address(dst),
            total_length=total_length,
            ttl=ttl,
            protocol=protocol,
            identification=identification,
        )
        assert IPv4Header.unpack(header.pack()) == header

    @given(
        src=addresses, dst=addresses, sport=ports, dport=ports,
        payload=st.binary(max_size=600),
    )
    def test_udp_datagram_roundtrip(self, src, dst, sport, dport, payload):
        packet = build_udp_datagram(
            IPv4Address(src), IPv4Address(dst), sport, dport, payload
        )
        ip, udp, parsed = parse_udp_datagram(packet)
        assert parsed == payload
        assert udp.src_port == sport and udp.dst_port == dport

    @given(size=payload_sizes)
    def test_overhead_inverse(self, size):
        model = OverheadModel()
        assert model.payload_size(model.wire_size(size)) == size


class TestPcapProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        packets=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
                st.sampled_from([Direction.IN, Direction.OUT]),
                payload_sizes,
                ports,
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_pcap_roundtrip_preserves_analysis_fields(self, packets):
        server = IPv4Address("10.0.0.2")
        client = IPv4Address("24.1.2.3")
        builder = TraceBuilder(server_address=server)
        for t, direction, size, port in sorted(packets, key=lambda p: p[0]):
            if direction is Direction.IN:
                builder.add(t, direction, client.value, server.value, port,
                            27015, size)
            else:
                builder.add(t, direction, server.value, client.value, 27015,
                            port, size)
        trace = builder.build()
        buffer = io.BytesIO()
        write_pcap(trace, buffer)
        buffer.seek(0)
        parsed = read_pcap(buffer, server_address=server)
        assert len(parsed) == len(trace)
        assert np.array_equal(parsed.payload_sizes, trace.payload_sizes)
        assert np.array_equal(parsed.directions, trace.directions)
        rebased = trace.timestamps - trace.timestamps[0]
        assert np.allclose(parsed.timestamps, rebased, atol=5e-6)


class TestStatsProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=0, max_size=200,
        ),
        bin_size=st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
    )
    def test_binning_conserves_events(self, times, bin_size):
        series = bin_events(np.asarray(times), bin_size, end_time=100.0 + bin_size)
        assert series.counts.sum() == len(times)

    @settings(max_examples=50, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=0.0, max_value=499.0, allow_nan=False),
            min_size=1, max_size=300,
        )
    )
    def test_histogram_mass_conserved_in_range(self, samples):
        hist = histogram(np.asarray(samples), 10.0, low=0.0, high=500.0)
        assert hist.probabilities.sum() == pytest.approx(1.0)
        assert hist.counts.sum() == len(samples)

    @settings(max_examples=50, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1, max_size=200,
        )
    )
    def test_cdf_monotone_and_bounded(self, samples):
        cdf = EmpiricalCDF.from_samples(np.asarray(samples))
        xs = np.linspace(min(samples) - 1, max(samples) + 1, 50)
        values = cdf(xs)
        assert np.all(np.diff(values) >= 0)
        assert values[0] >= 0.0 and values[-1] == 1.0

    @settings(max_examples=50, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
            min_size=2, max_size=100,
        ),
        q=st.floats(min_value=0.01, max_value=1.0),
    )
    def test_quantile_consistent_with_cdf(self, samples, q):
        cdf = EmpiricalCDF.from_samples(np.asarray(samples))
        x = cdf.quantile(q)
        assert cdf(x) >= q - 1e-12

    @settings(max_examples=30, deadline=None)
    @given(
        slope=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        intercept=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
    )
    def test_fit_line_recovers_exact_lines(self, slope, intercept):
        x = np.linspace(0.0, 10.0, 20)
        fit = fit_line(x, slope * x + intercept)
        assert fit.slope == pytest.approx(slope, abs=1e-6 + 1e-6 * abs(slope))
        assert fit.intercept == pytest.approx(
            intercept, abs=1e-5 + 1e-6 * abs(intercept)
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_variance_time_decays_for_iid(self, seed):
        series = np.random.default_rng(seed).poisson(5, 5000).astype(float)
        plot = variance_time_plot(series, 0.01)
        variances = [p.normalized_variance for p in plot.points]
        # iid aggregation decays overall; individual large-block estimates
        # are noisy (few blocks), so assert the global shape only
        assert variances[0] == pytest.approx(1.0)
        assert variances[-1] < 0.1 * variances[0]
        assert max(variances) <= 1.0 + 1e-9


class TestQueueProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        rate=st.floats(min_value=50.0, max_value=2000.0),
        wan_queue=st.integers(1, 40),
        seed=st.integers(0, 100),
    )
    def test_forwarding_conservation(self, rate, wan_queue, seed):
        from repro.router.device import DeviceProfile, ForwardingEngine

        rng = np.random.default_rng(seed)
        server = IPv4Address("10.0.0.2")
        builder = TraceBuilder(server_address=server)
        t = 0.0
        for _ in range(300):
            t += float(rng.exponential(1.0 / rate))
            builder.add(t, Direction.IN, 42, server.value, 1000, 27015, 40)
        trace = builder.build()
        profile = DeviceProfile(
            wan_queue=wan_queue,
            stall_interval_mean=1e9,
            freeze_threshold=10**6,
        )
        result = ForwardingEngine(profile, seed=seed).process(trace)
        assert result.inbound_forwarded + (result.fates == 0).sum() == 300
        mask = result.forwarded_mask()
        assert np.all(result.departures[mask] >= result.timestamps[mask])
