"""Determinism contracts of the matchmaking closed loop.

The tentpole guarantees: policy runs are bit-identical across worker
counts and across warm/cold shard caches (latency-aware placement
included), a uniform RTT matrix pins ``lowest_rtt`` — and α-only
``latency_aware`` — to ``least_loaded`` assignment-for-assignment,
admission never overfills a server (property-tested), and endogenous
facilitynet ingress follows the assigned populations.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet.cache import ShardCache
from repro.fleet.profiles import hosting_facility
from repro.fleet.scenario import FleetScenario
from repro.matchmaking import (
    LatencyAwarePolicy,
    PoolConfig,
    RttMatrix,
    simulate_matchmaking,
)
from repro.facilitynet.pipeline import rack_ingress_traces
from repro.facilitynet.topology import build_topology

HORIZON = 600.0
WINDOW = (60.0, 120.0)


def _series_fields(series):
    return [
        np.asarray(getattr(series, name))
        for name in ("in_counts", "out_counts", "in_bytes", "out_bytes")
    ]


def _series_equal(a, b):
    return all(
        np.array_equal(x, y) for x, y in zip(_series_fields(a), _series_fields(b))
    )


def _trace_equal(a, b):
    return (
        len(a) == len(b)
        and np.array_equal(a.timestamps, b.timestamps)
        and np.array_equal(a.payload_sizes, b.payload_sizes)
        and np.array_equal(a.src_addrs, b.src_addrs)
    )


@pytest.fixture(scope="module")
def fleet():
    return hosting_facility(n_servers=4, duration=HORIZON, seed=21)


@pytest.fixture(scope="module")
def result(fleet):
    config = PoolConfig.for_fleet(
        fleet,
        demand_ratio=2.0,
        epoch_length=30.0,
        session_duration_mean=150.0,
    )
    return simulate_matchmaking(fleet, "least_loaded", config)


class TestWorkerCountIndependence:
    @pytest.mark.parametrize("workers", [4])
    def test_series_bit_identical_across_worker_counts(self, result, workers):
        serial = FleetScenario.from_matchmaking(result).aggregate_per_second(
            workers=1
        )
        sharded = FleetScenario.from_matchmaking(result).aggregate_per_second(
            workers=workers
        )
        assert _series_equal(serial, sharded)

    def test_packet_window_bit_identical_across_worker_counts(self, result):
        serial = FleetScenario.from_matchmaking(result).aggregate_packet_window(
            *WINDOW, workers=1
        )
        sharded = FleetScenario.from_matchmaking(result).aggregate_packet_window(
            *WINDOW, workers=4
        )
        assert _trace_equal(serial, sharded)


class TestCacheWarmth:
    def test_warm_rerun_replays_bit_identically(self, result, tmp_path):
        cache = ShardCache(tmp_path / "shards")
        cold = FleetScenario.from_matchmaking(
            result, cache=cache
        ).aggregate_per_second(workers=1)
        assert cache.stats.stores == result.n_servers
        assert cache.stats.hits == 0

        warm_cache = ShardCache(tmp_path / "shards")
        warm = FleetScenario.from_matchmaking(
            result, cache=warm_cache
        ).aggregate_per_second(workers=1)
        assert warm_cache.stats.hits == result.n_servers
        assert warm_cache.stats.stores == 0
        assert _series_equal(cold, warm)

    def test_warm_sharded_matches_cold_serial(self, result, tmp_path):
        cache = ShardCache(tmp_path / "shards2")
        cold = FleetScenario.from_matchmaking(
            result, cache=cache
        ).aggregate_per_second(workers=1)
        warm = FleetScenario.from_matchmaking(
            result, cache=ShardCache(tmp_path / "shards2")
        ).aggregate_per_second(workers=3)
        assert _series_equal(cold, warm)

    def test_policy_change_selects_fresh_entries(self, fleet, result, tmp_path):
        cache = ShardCache(tmp_path / "shards3")
        FleetScenario.from_matchmaking(result, cache=cache).aggregate_per_second(
            workers=1
        )
        other = simulate_matchmaking(fleet, "random", result.config)
        other_cache = ShardCache(tmp_path / "shards3")
        FleetScenario.from_matchmaking(
            other, cache=other_cache
        ).aggregate_per_second(workers=1)
        # different placement -> different session tuples -> no reuse
        assert other_cache.stats.hits == 0
        assert other_cache.stats.stores == fleet.n_servers


class TestUniformRttParity:
    """A flat RTT geometry collapses latency awareness onto load."""

    @pytest.fixture(scope="class")
    def config(self, fleet):
        return PoolConfig.for_fleet(
            fleet,
            demand_ratio=2.0,
            epoch_length=30.0,
            session_duration_mean=150.0,
        )

    @pytest.fixture(scope="class")
    def uniform(self, fleet, config):
        matrix = RttMatrix.for_fleet(
            fleet, config.region_profile, profile="uniform"
        )
        assert matrix.is_uniform
        return matrix

    def _assert_same_assignments(self, a, b):
        assert a.sessions == b.sessions
        assert np.array_equal(a.occupancy, b.occupancy)
        assert a.admission == b.admission
        assert a.repeat_assignments == b.repeat_assignments

    def test_lowest_rtt_reproduces_least_loaded(self, fleet, config, uniform):
        baseline = simulate_matchmaking(fleet, "least_loaded", config)
        pinned = simulate_matchmaking(fleet, "lowest_rtt", config, rtt=uniform)
        self._assert_same_assignments(baseline, pinned)

    def test_alpha_only_latency_aware_reproduces_least_loaded(
        self, fleet, config
    ):
        # β = 0 ignores the matrix entirely, so even a non-uniform
        # geometry leaves the assignments bit-identical to least_loaded
        baseline = simulate_matchmaking(fleet, "least_loaded", config)
        alpha_only = simulate_matchmaking(
            fleet, LatencyAwarePolicy(alpha=1.0, beta=0.0), config
        )
        self._assert_same_assignments(baseline, alpha_only)

    def test_non_uniform_geometry_moves_assignments(self, fleet, config):
        # the parity is a property of the *uniform* matrix: the stock
        # global geometry must actually change latency-aware placement
        baseline = simulate_matchmaking(fleet, "least_loaded", config)
        aware = simulate_matchmaking(fleet, "lowest_rtt", config)
        assert aware.sessions != baseline.sessions


class TestLatencyAwareExperimentPathDeterminism:
    """The new policies ride the sharded/cached stage bit-identically."""

    @pytest.fixture(scope="class")
    def aware_result(self, fleet):
        config = PoolConfig.for_fleet(
            fleet,
            demand_ratio=2.0,
            epoch_length=30.0,
            session_duration_mean=150.0,
        )
        return simulate_matchmaking(fleet, "latency_aware", config)

    @pytest.mark.parametrize("workers", [4])
    def test_series_bit_identical_across_worker_counts(
        self, aware_result, workers
    ):
        serial = FleetScenario.from_matchmaking(
            aware_result
        ).aggregate_per_second(workers=1)
        sharded = FleetScenario.from_matchmaking(
            aware_result
        ).aggregate_per_second(workers=workers)
        assert _series_equal(serial, sharded)

    def test_warm_rerun_replays_bit_identically(self, aware_result, tmp_path):
        cache = ShardCache(tmp_path / "aware-shards")
        cold = FleetScenario.from_matchmaking(
            aware_result, cache=cache
        ).aggregate_per_second(workers=1)
        assert cache.stats.stores == aware_result.n_servers

        warm_cache = ShardCache(tmp_path / "aware-shards")
        warm = FleetScenario.from_matchmaking(
            aware_result, cache=warm_cache
        ).aggregate_per_second(workers=4)
        assert warm_cache.stats.hits == aware_result.n_servers
        assert warm_cache.stats.stores == 0
        assert _series_equal(cold, warm)

    def test_rtt_geometry_is_seed_deterministic(self, fleet, aware_result):
        config = aware_result.config
        again = simulate_matchmaking(fleet, "latency_aware", config)
        assert np.array_equal(aware_result.rtt.matrix, again.rtt.matrix)
        assert aware_result.sessions == again.sessions
        assert np.array_equal(aware_result.occupancy, again.occupancy)
        shifted = simulate_matchmaking(fleet, "latency_aware", config, seed=99)
        assert not np.array_equal(aware_result.rtt.matrix, shifted.rtt.matrix)


class TestAdmissionProperty:
    @given(
        n_servers=st.integers(min_value=1, max_value=4),
        pool_factor=st.integers(min_value=2, max_value=6),
        demand_ratio=st.floats(min_value=0.5, max_value=6.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=12, deadline=None)
    def test_least_loaded_never_exceeds_capacity(
        self, n_servers, pool_factor, demand_ratio, seed
    ):
        fleet = hosting_facility(n_servers=n_servers, duration=300.0, seed=seed)
        slots = sum(p.max_players for p in fleet.server_profiles())
        config = PoolConfig.for_fleet(
            fleet,
            pool_size=pool_factor * slots,
            demand_ratio=demand_ratio,
            epoch_length=60.0,
            session_duration_mean=120.0,
        )
        result = simulate_matchmaking(fleet, "least_loaded", config)
        assert np.all(
            result.occupancy <= np.asarray(result.capacities)[:, None]
        )
        assert result.admission.attempts == (
            result.admission.admitted + result.admission.rejected
        )


class TestEndogenousIngress:
    def test_rack_load_follows_assignments(self, fleet, result):
        topology = build_topology(
            fleet.n_servers, 2, per_server_pps=1e6, per_server_bps=1e9
        )
        # move every session to the servers of rack 0 (indices 0, 1)
        starved = (
            result.sessions[0] + result.sessions[2],
            result.sessions[1] + result.sessions[3],
            (),
            (),
        )
        ingress = rack_ingress_traces(
            fleet, topology, *WINDOW, workers=1, assignments=starved
        )
        assert len(ingress) == 2
        assert len(ingress[0]) > 0
        assert len(ingress[1]) == 0

    def test_endogenous_ingress_worker_independent(self, fleet, result):
        topology = build_topology(
            fleet.n_servers, 2, per_server_pps=1e6, per_server_bps=1e9
        )
        serial = rack_ingress_traces(
            fleet, topology, *WINDOW, workers=1, assignments=result.sessions
        )
        sharded = rack_ingress_traces(
            fleet, topology, *WINDOW, workers=4, assignments=result.sessions
        )
        assert all(_trace_equal(a, b) for a, b in zip(serial, sharded))

    def test_assignment_length_validated(self, fleet, result):
        topology = build_topology(
            fleet.n_servers, 2, per_server_pps=1e6, per_server_bps=1e9
        )
        with pytest.raises(ValueError):
            rack_ingress_traces(
                fleet, topology, *WINDOW, assignments=result.sessions[:2]
            )
