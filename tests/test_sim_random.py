"""Unit tests for named random streams and distribution helpers."""

import numpy as np
import pytest

from repro.sim.random import (
    DiscreteEmpirical,
    RandomStreams,
    derive_seed,
    lognormal_params,
    sample_lognormal,
    sample_truncated_normal,
)


class TestRandomStreams:
    def test_same_name_same_stream_object(self):
        streams = RandomStreams(42)
        assert streams.get("a") is streams.get("a")

    def test_reproducible_across_instances(self):
        a = RandomStreams(42).get("arrivals").uniform(size=5)
        b = RandomStreams(42).get("arrivals").uniform(size=5)
        assert np.allclose(a, b)

    def test_different_names_independent(self):
        streams = RandomStreams(42)
        a = streams.get("a").uniform(size=100)
        b = streams.get("b").uniform(size=100)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).get("x").uniform(size=10)
        b = RandomStreams(2).get("x").uniform(size=10)
        assert not np.allclose(a, b)

    def test_spawn_is_reproducible(self):
        a = RandomStreams(7).spawn("child").get("s").uniform(size=4)
        b = RandomStreams(7).spawn("child").get("s").uniform(size=4)
        assert np.allclose(a, b)

    def test_derive_seed_stable(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")
        assert derive_seed(1, "x") != derive_seed(1, "y")

    def test_names_tracks_created(self):
        streams = RandomStreams(0)
        streams.get("b")
        streams.get("a")
        assert streams.names() == ("a", "b")


class TestLognormal:
    def test_params_hit_target_mean_and_cv(self):
        rng = np.random.default_rng(0)
        samples = sample_lognormal(rng, mean=900.0, cv=1.1, size=200_000)
        assert samples.mean() == pytest.approx(900.0, rel=0.02)
        assert samples.std() / samples.mean() == pytest.approx(1.1, rel=0.03)

    def test_zero_cv_is_constant(self):
        mu, sigma = lognormal_params(50.0, 0.0)
        assert sigma == 0.0
        assert np.exp(mu) == pytest.approx(50.0)

    def test_invalid_mean_raises(self):
        with pytest.raises(ValueError):
            lognormal_params(0.0, 1.0)

    def test_negative_cv_raises(self):
        with pytest.raises(ValueError):
            lognormal_params(10.0, -0.5)


class TestTruncatedNormal:
    def test_respects_bounds(self, rng):
        samples = sample_truncated_normal(rng, 100.0, 50.0, 20.0, 150.0, size=10_000)
        assert samples.min() >= 20.0
        assert samples.max() <= 150.0

    def test_scalar_draw(self, rng):
        value = sample_truncated_normal(rng, 40.0, 5.0, 20.0, 70.0)
        assert isinstance(value, float)
        assert 20.0 <= value <= 70.0

    def test_empty_interval_raises(self, rng):
        with pytest.raises(ValueError):
            sample_truncated_normal(rng, 0.0, 1.0, 5.0, 5.0)

    def test_mean_approximately_preserved_for_wide_window(self, rng):
        samples = sample_truncated_normal(rng, 50.0, 5.0, 0.0, 100.0, size=50_000)
        assert samples.mean() == pytest.approx(50.0, abs=0.2)


class TestDiscreteEmpirical:
    def test_mean_and_variance(self):
        dist = DiscreteEmpirical([10.0, 20.0], [1.0, 1.0])
        assert dist.mean == pytest.approx(15.0)
        assert dist.variance == pytest.approx(25.0)

    def test_sampling_follows_weights(self, rng):
        dist = DiscreteEmpirical([0.0, 1.0], [1.0, 3.0])
        samples = dist.sample(rng, size=40_000)
        assert samples.mean() == pytest.approx(0.75, abs=0.01)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            DiscreteEmpirical([1.0, 2.0], [1.0])

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            DiscreteEmpirical([1.0], [-1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DiscreteEmpirical([], [])
