"""Bench: regenerate Fig 8 — total packet load at m=50ms."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import fig8


def test_bench_fig8(benchmark):
    """Regenerates Fig 8 — total packet load at m=50ms and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, fig8.run)
