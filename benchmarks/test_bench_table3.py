"""Bench: regenerate Table III — application information."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import table3


def test_bench_table3(benchmark):
    """Regenerates Table III — application information and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, table3.run)
