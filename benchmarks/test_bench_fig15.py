"""Bench: regenerate Fig 15 — per-second outgoing load through the NAT."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import fig15


def test_bench_fig15(benchmark):
    """Regenerates Fig 15 — per-second outgoing load through the NAT and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, fig15.run)
