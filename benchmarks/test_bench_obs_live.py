"""Bench: live-monitoring costs — the disabled hook and the tail reader.

Two costs gate whether `obs.progress` may sit inside million-iteration
loops and whether `repro-analyze watch` can keep up with a busy run:

* the **disabled hook** (no session active) must stay a global read and
  a return — instrumented hot loops pay ~nothing when untraced;
* the **tail reader** must consume appended records far faster than any
  writer produces them (writers are rate-limited to ~4 rows/s/stage).

Wall-clock floors are deliberately conservative (CI machines are
noisy); the trend signal lives in the ``BENCH_obs_*.json`` trajectory.
"""

from __future__ import annotations

import json
import time

from repro import obs
from repro.obs.live import tail_jsonl

#: Disabled-hook calls per measurement round.
_HOOK_CALLS = 200_000
#: Conservative floor: a no-op hook must clear 500k calls/s (measured
#: well above 2M/s; the floor only catches a pathological regression
#: like an accidental clock read or dict churn on the disabled path).
_HOOK_FLOOR_CPS = 500_000.0

#: Records in the tail-throughput probe.
_TAIL_RECORDS = 50_000
#: Floor: 100k records/s (measured in the millions; any full-file
#: re-read regression collapses this by orders of magnitude).
_TAIL_FLOOR_RPS = 100_000.0


def test_bench_disabled_progress_hook(benchmark):
    """obs.progress with no session: a global read per call."""
    assert obs.current_session() is None

    def hammer():
        progress = obs.progress
        for index in range(_HOOK_CALLS):
            progress("bench.stage", index, _HOOK_CALLS)

    t0 = time.perf_counter()
    benchmark.pedantic(hammer, rounds=1, iterations=1)
    wall = time.perf_counter() - t0
    rate = _HOOK_CALLS / wall if wall > 0 else float("inf")
    print(f"\ndisabled obs.progress: {rate:,.0f} calls/s")
    assert rate >= _HOOK_FLOOR_CPS, (
        f"disabled hook at {rate:,.0f} calls/s, floor "
        f"{_HOOK_FLOOR_CPS:,.0f} — the untraced path regressed"
    )


def test_bench_tail_reader_throughput(benchmark, tmp_path):
    """tail_jsonl drains a 50k-record stream in one incremental poll."""
    path = tmp_path / "progress.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        for index in range(_TAIL_RECORDS):
            handle.write(
                json.dumps(
                    {"stage": "s", "done": index, "total": _TAIL_RECORDS}
                )
                + "\n"
            )
    tail = tail_jsonl(path)

    t0 = time.perf_counter()
    records = benchmark.pedantic(tail.poll, rounds=1, iterations=1)
    wall = time.perf_counter() - t0
    assert len(records) == _TAIL_RECORDS
    assert tail.poll() == []  # drained: nothing re-read
    rate = _TAIL_RECORDS / wall if wall > 0 else float("inf")
    print(f"\ntail_jsonl: {rate:,.0f} records/s")
    assert rate >= _TAIL_FLOOR_RPS, (
        f"tail reader at {rate:,.0f} records/s, floor "
        f"{_TAIL_FLOOR_RPS:,.0f}"
    )
