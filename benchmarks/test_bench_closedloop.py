"""Bench: regenerate X5 — closed-loop NAT validation."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import closedloop


def test_bench_closedloop(benchmark):
    """Regenerates X5 — closed-loop NAT validation and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, closedloop.run)
