"""Bench: regenerate Fig 6 — total packet load at m=10ms."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import fig6


def test_bench_fig6(benchmark):
    """Regenerates Fig 6 — total packet load at m=10ms and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, fig6.run)
