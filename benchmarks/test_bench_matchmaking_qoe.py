"""Bench: the QoE-coupled epoch loop under a scripted demand scenario.

The coupling adds per-admission arithmetic (duration multiplier, balk
escalation) and the scenario adds per-epoch hazard/capacity modulation —
including the careful slot accounting the columnar engine switches to
when effective capacities move.  This bench times the fully coupled
columnar loop at fleet scale so a regression in the coupled path is
visible even while the uncoupled benches hold, and cross-checks the
scalar engine on a smaller pool (the scalar loop at 10^5 players would
dominate the suite's wall clock for no extra signal).
"""

from __future__ import annotations

import numpy as np

from repro.fleet.profiles import hosting_facility
from repro.matchmaking import (
    PoolConfig,
    QoeConfig,
    make_scenario,
    simulate_matchmaking,
)

#: The coupled headline pool (columnar engine).
POOL_SIZE = 100_000
FLEET_SERVERS = 32
HORIZON_S = 1800.0

#: Scalar cross-check scale.
SCALAR_SERVERS = 6
SCALAR_HORIZON_S = 900.0


def _coupled_config(fleet, pool_size=None):
    config = PoolConfig.for_fleet(
        fleet,
        pool_size=pool_size,
        demand_ratio=2.0,
        epoch_length=60.0,
        session_duration_mean=300.0,
    )
    return config.replace(qoe=QoeConfig(enabled=True))


def coupled_columnar_run():
    fleet = hosting_facility(
        n_servers=FLEET_SERVERS, duration=HORIZON_S, seed=0
    )
    config = _coupled_config(fleet, pool_size=POOL_SIZE)
    scenario = make_scenario("regional_outage", config.n_epochs)
    return simulate_matchmaking(
        fleet, "latency_aware", config, scenario=scenario, engine="columnar"
    )


def test_bench_qoe_coupled_epoch_loop(benchmark):
    """Coupled columnar loop: 10^5 players, outage scenario, QoE on."""
    result = benchmark.pedantic(coupled_columnar_run, rounds=1, iterations=1)
    assert result.config.qoe.enabled
    assert result.scenario_name == "regional_outage"
    assert result.admission.admitted > 0
    # configured capacity is still never exceeded (effective capacity
    # may dip below occupancy while downed servers drain)
    assert np.all(
        result.occupancy <= np.asarray(result.capacities)[:, None]
    )
    # the coupling actually fired: some sessions were shortened
    mults = np.concatenate([m for m in result.qoe_multipliers if m.size])
    assert mults.size > 0 and float(mults.min()) < 1.0


def test_bench_qoe_coupled_scalar(benchmark):
    """Scalar reference loop under the same coupling, smaller pool."""
    fleet = hosting_facility(
        n_servers=SCALAR_SERVERS, duration=SCALAR_HORIZON_S, seed=0
    )
    config = _coupled_config(fleet)
    scenario = make_scenario("flash_crowd", config.n_epochs)

    def run():
        return simulate_matchmaking(
            fleet, "capacity_aware", config, scenario=scenario, engine="scalar"
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.config.qoe.enabled
    assert result.admission.admitted > 0
