"""Bench: facilitynet — busy-minute facility traffic through the tree.

Times the full experiment (fleet windows, per-rack merge, four-ratio
uplink sweep, worker-parity cross-check) and separately the hop
traversal alone on cached ingress, so regressions in the shared FIFO
kernel or the tail-drop link show up apart from fleet simulation cost.
"""

from __future__ import annotations

from benchmarks.conftest import run_experiment_bench
from repro.experiments import facilitynet
from repro.facilitynet.pipeline import rack_ingress_traces, run_hops
from repro.facilitynet.report import ingress_envelope
from repro.facilitynet.topology import build_topology, provision_from_envelope
from repro.fleet.profiles import hosting_facility


def test_bench_facilitynet_experiment(benchmark):
    """The registered experiment end to end."""
    run_experiment_bench(benchmark, facilitynet.run)


def test_bench_facilitynet_hops_only(benchmark):
    """Hop traversal on pre-simulated ingress (kernel + link cost only)."""
    fleet = hosting_facility(
        n_servers=facilitynet.FACILITY_SERVERS,
        duration=facilitynet.HORIZON_S,
        seed=0,
    )
    shape = build_topology(
        facilitynet.FACILITY_SERVERS,
        facilitynet.FACILITY_RACKS,
        per_server_pps=1.0,
        per_server_bps=1.0,
    )
    ingress = rack_ingress_traces(
        fleet, shape, *facilitynet.WINDOW, workers=1
    )
    envelope = ingress_envelope(ingress, *facilitynet.WINDOW, percentile=100.0)
    topology = provision_from_envelope(
        envelope,
        n_servers=facilitynet.FACILITY_SERVERS,
        n_racks=facilitynet.FACILITY_RACKS,
        rack_oversubscription=facilitynet.RACK_OVERSUBSCRIPTION,
        core_oversubscription=facilitynet.CORE_OVERSUBSCRIPTION,
        uplink_oversubscription=facilitynet.RATIOS[-1],
    )
    result = benchmark.pedantic(
        run_hops,
        args=(topology, ingress, *facilitynet.WINDOW),
        kwargs={"seed": fleet.seed},
        rounds=1,
        iterations=1,
    )
    assert result.uplink.dropped > 0
    assert result.ingress_packets == sum(len(trace) for trace in ingress)
