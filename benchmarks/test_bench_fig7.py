"""Bench: regenerate Fig 7 — in/out packet load at m=10ms."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import fig7


def test_bench_fig7(benchmark):
    """Regenerates Fig 7 — in/out packet load at m=10ms and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, fig7.run)
