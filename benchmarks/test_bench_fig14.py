"""Bench: regenerate Fig 14 — per-second incoming load through the NAT."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import fig14


def test_bench_fig14(benchmark):
    """Regenerates Fig 14 — per-second incoming load through the NAT and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, fig14.run)
