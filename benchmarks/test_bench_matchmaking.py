"""Bench: matchmaking epoch loop at 10^5 players, cached vs uncached traffic.

Two costs matter for the closed loop at scale: the epoch engine itself
(pool draws + chronological admission — pure Python over vectorised
draws), and the per-server traffic synthesis over the resulting
assignments (the sharded, cacheable stage).  The first bench pushes a
100 000-player pool through a 32-server facility and reports epoch-loop
throughput; the second pair times facility aggregation over one
assignment cold (simulated) and warm (replayed from a
:class:`~repro.fleet.cache.ShardCache`), asserting the replay is
bit-identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet.cache import ShardCache
from repro.fleet.profiles import hosting_facility
from repro.fleet.scenario import FleetScenario
from repro.matchmaking import PoolConfig, simulate_matchmaking

#: The headline pool: 10^5 players sharing one facility.
POOL_SIZE = 100_000
#: Servers in the big-pool facility.
BIG_FLEET_SERVERS = 32
#: Epoch-loop horizon for the throughput bench (30 epochs).
BIG_HORIZON_S = 1800.0

#: Smaller facility for the cached-vs-uncached aggregation pair.
CACHE_SERVERS = 8
CACHE_HORIZON_S = 1800.0


def big_pool_run():
    fleet = hosting_facility(
        n_servers=BIG_FLEET_SERVERS, duration=BIG_HORIZON_S, seed=0
    )
    config = PoolConfig.for_fleet(
        fleet,
        pool_size=POOL_SIZE,
        demand_ratio=2.0,
        epoch_length=60.0,
        session_duration_mean=300.0,
    )
    return simulate_matchmaking(fleet, "least_loaded", config)


def test_bench_epoch_loop_at_1e5_players(benchmark):
    """Epoch-loop throughput: 10^5 players x 30 epochs, 32 servers."""
    result = benchmark.pedantic(big_pool_run, rounds=1, iterations=1)
    assert result.config.pool_size == POOL_SIZE
    assert result.admission.admitted > 0
    assert np.all(
        result.occupancy <= np.asarray(result.capacities)[:, None]
    )
    # saturating demand must actually exercise the admission path
    assert result.admission.rejected > 0


@pytest.fixture(scope="module")
def cache_assignment():
    fleet = hosting_facility(
        n_servers=CACHE_SERVERS, duration=CACHE_HORIZON_S, seed=1
    )
    config = PoolConfig.for_fleet(fleet, demand_ratio=1.5, epoch_length=60.0)
    return simulate_matchmaking(fleet, "least_loaded", config)


def test_bench_assigned_traffic_uncached(benchmark, cache_assignment):
    """Cold facility aggregation: every per-server series simulated."""
    series = benchmark.pedantic(
        lambda: FleetScenario.from_matchmaking(
            cache_assignment
        ).aggregate_per_second(workers=1),
        rounds=1,
        iterations=1,
    )
    assert len(series) == int(CACHE_HORIZON_S)


def test_bench_assigned_traffic_cached(benchmark, cache_assignment, tmp_path):
    """Warm facility aggregation: per-server series replayed from disk."""
    cold_cache = ShardCache(tmp_path / "shards")
    cold = FleetScenario.from_matchmaking(
        cache_assignment, cache=cold_cache
    ).aggregate_per_second(workers=1)
    assert cold_cache.stats.stores == CACHE_SERVERS

    def warm_run():
        return FleetScenario.from_matchmaking(
            cache_assignment, cache=ShardCache(tmp_path / "shards")
        ).aggregate_per_second(workers=1)

    warm = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    assert all(
        np.array_equal(getattr(cold, name), getattr(warm, name))
        for name in ("in_counts", "out_counts", "in_bytes", "out_bytes")
    )
