"""Bench: regenerate X1 — preferential route caching ablation (§IV-B)."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import caching


def test_bench_caching(benchmark):
    """Regenerates X1 — preferential route caching ablation (§IV-B) and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, caching.run)
