"""Bench: regenerate Table IV — NAT experiment loss rates."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import table4


def test_bench_table4(benchmark):
    """Regenerates Table IV — NAT experiment loss rates and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, table4.run)
