"""Bench: repro.kernels — scalar vs vectorised FIFO at 10^5–10^6 packets.

The facility pipeline's hop cost is dominated by the pps FIFO kernel;
these benches time the authoritative scalar loop against the idle-period
block-decomposition fast path on the same high-utilisation Poisson
stream, and pin the acceptance bar: the fast path must stay bit-identical
and at least 5x faster at 10^6 packets.
"""

from __future__ import annotations

import time

import numpy as np

from repro.kernels.fifo import _scalar_fifo, fifo_forward

#: Queue depth of the benched hop (deep enough that the stream below
#: never overflows — the regime the fast path accelerates).
QUEUE = 256
#: Offered utilisation of the benched stream (busy periods long enough
#: to amortise the vectorised per-segment work).
UTILISATION = 0.9


def kernel_stream(n: int, seed: int = 7):
    """A seeded Poisson arrival stream with jittered service times."""
    rng = np.random.default_rng(seed)
    timestamps = np.cumsum(rng.exponential(1.0, n))
    service_times = UTILISATION * rng.uniform(0.8, 1.2, n)
    return timestamps, service_times


def run_scalar(timestamps, service_times, queue=QUEUE):
    n = timestamps.size
    fates = np.ones(n, dtype=np.int8)
    departures = np.full(n, np.nan)
    _scalar_fifo(
        timestamps, service_times, None, queue, 1, (), None, fates, departures
    )
    return fates, departures


def test_bench_fifo_scalar_100k(benchmark):
    """The per-packet reference loop at 10^5 packets."""
    t, s = kernel_stream(100_000)
    fates, _ = benchmark.pedantic(
        run_scalar, args=(t, s), rounds=1, iterations=1
    )
    assert int((fates == 1).sum()) == t.size  # deep buffer: no drops


def test_bench_fifo_vectorized_100k(benchmark):
    """The idle-period fast path at 10^5 packets."""
    t, s = kernel_stream(100_000)
    result = benchmark.pedantic(
        fifo_forward, args=(t, s), kwargs={"primary_queue": QUEUE},
        rounds=1, iterations=1,
    )
    assert int((result.fates == 1).sum()) == t.size


def test_bench_fifo_vectorized_1m(benchmark):
    """The idle-period fast path at 10^6 packets (multi-hour hop windows)."""
    t, s = kernel_stream(1_000_000)
    result = benchmark.pedantic(
        fifo_forward, args=(t, s), kwargs={"primary_queue": QUEUE},
        rounds=1, iterations=1,
    )
    assert int((result.fates == 1).sum()) == t.size


def test_fifo_fast_path_speedup_and_parity_1m():
    """Acceptance bar: bit-identical and >= 5x faster at 10^6 packets.

    Both sides take the best of repeated runs so a scheduler hiccup on a
    shared CI runner cannot flip the ratio (measured ~7x, floor 5x).
    """
    t, s = kernel_stream(1_000_000)

    scalar_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        scalar_fates, scalar_departures = run_scalar(t, s)
        scalar_seconds = min(scalar_seconds, time.perf_counter() - start)

    fast_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        result = fifo_forward(t, s, primary_queue=QUEUE)
        fast_seconds = min(fast_seconds, time.perf_counter() - start)

    np.testing.assert_array_equal(result.fates, scalar_fates)
    assert np.array_equal(result.departures, scalar_departures, equal_nan=True)
    speedup = scalar_seconds / fast_seconds
    print(
        f"\nscalar {scalar_seconds:.3f} s, vectorized {fast_seconds:.3f} s "
        f"-> {speedup:.1f}x at 10^6 packets"
    )
    assert speedup >= 5.0, f"fast path only {speedup:.1f}x faster"
