"""Bench: regenerate Fig 1 — per-minute bandwidth, whole week."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import fig1


def test_bench_fig1(benchmark):
    """Regenerates Fig 1 — per-minute bandwidth, whole week and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, fig1.run)
