"""Bench: regenerate Fig 5 — variance-time plot and Hurst regimes."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import fig5


def test_bench_fig5(benchmark):
    """Regenerates Fig 5 — variance-time plot and Hurst regimes and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, fig5.run)
