"""Bench: regenerate Fig 12 — packet size PDFs."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import fig12


def test_bench_fig12(benchmark):
    """Regenerates Fig 12 — packet size PDFs and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, fig12.run)
