"""Bench: latency-aware matchmaking at 10^5 players, cached vs uncached.

The RTT-scoring policies add a per-attempt vector score on top of the
epoch loop, so the closed loop's two costs are re-measured with
``latency_aware`` placement: the epoch engine itself (pool draws +
chronological admission + per-attempt occupancy/RTT scoring) over a
100 000-player pool on a 32-server, 4-region facility, and the sharded
per-server traffic synthesis over the resulting assignments, cold
(simulated) versus warm (replayed from a
:class:`~repro.fleet.cache.ShardCache`), asserting the replay is
bit-identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet.cache import ShardCache
from repro.fleet.profiles import hosting_facility
from repro.fleet.scenario import FleetScenario
from repro.matchmaking import PoolConfig, RttMatrix, simulate_matchmaking

#: The headline pool: 10^5 players sharing one facility.
POOL_SIZE = 100_000
#: Servers in the big-pool facility.
BIG_FLEET_SERVERS = 32
#: Epoch-loop horizon for the throughput bench (30 epochs).
BIG_HORIZON_S = 1800.0

#: Smaller facility for the cached-vs-uncached aggregation pair.
CACHE_SERVERS = 8
CACHE_HORIZON_S = 1800.0


def big_pool_run():
    fleet = hosting_facility(
        n_servers=BIG_FLEET_SERVERS, duration=BIG_HORIZON_S, seed=0
    )
    config = PoolConfig.for_fleet(
        fleet,
        pool_size=POOL_SIZE,
        demand_ratio=2.0,
        epoch_length=60.0,
        session_duration_mean=300.0,
    )
    rtt = RttMatrix.for_fleet(fleet, config.region_profile, seed=0)
    return simulate_matchmaking(fleet, "latency_aware", config, rtt=rtt)


def test_bench_epoch_loop_with_rtt_scoring_at_1e5_players(benchmark):
    """Epoch-loop throughput with RTT scoring: 10^5 players, 32 servers."""
    result = benchmark.pedantic(big_pool_run, rounds=1, iterations=1)
    assert result.config.pool_size == POOL_SIZE
    assert result.admission.admitted > 0
    assert np.all(
        result.occupancy <= np.asarray(result.capacities)[:, None]
    )
    # saturating demand must actually exercise the admission path
    assert result.admission.rejected > 0
    # and every admission recorded the RTT it was placed at
    assert result.all_session_rtts().size == result.admission.admitted
    assert np.all(result.all_session_rtts() > 0)


@pytest.fixture(scope="module")
def latency_assignment():
    fleet = hosting_facility(
        n_servers=CACHE_SERVERS, duration=CACHE_HORIZON_S, seed=1
    )
    config = PoolConfig.for_fleet(fleet, demand_ratio=1.5, epoch_length=60.0)
    return simulate_matchmaking(fleet, "latency_aware", config)


def test_bench_latency_aware_traffic_uncached(benchmark, latency_assignment):
    """Cold facility aggregation: every per-server series simulated."""
    series = benchmark.pedantic(
        lambda: FleetScenario.from_matchmaking(
            latency_assignment
        ).aggregate_per_second(workers=1),
        rounds=1,
        iterations=1,
    )
    assert len(series) == int(CACHE_HORIZON_S)


def test_bench_latency_aware_traffic_cached(
    benchmark, latency_assignment, tmp_path
):
    """Warm facility aggregation: per-server series replayed from disk."""
    cold_cache = ShardCache(tmp_path / "shards")
    cold = FleetScenario.from_matchmaking(
        latency_assignment, cache=cold_cache
    ).aggregate_per_second(workers=1)
    assert cold_cache.stats.stores == CACHE_SERVERS

    def warm_run():
        return FleetScenario.from_matchmaking(
            latency_assignment, cache=ShardCache(tmp_path / "shards")
        ).aggregate_per_second(workers=1)

    warm = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    assert all(
        np.array_equal(getattr(cold, name), getattr(warm, name))
        for name in ("in_counts", "out_counts", "in_bytes", "out_bytes")
    )
