"""Benchmark harness plumbing.

Each bench target regenerates one of the paper's tables/figures via its
experiment module, measures wall time with pytest-benchmark (single
round — these are simulation pipelines, not microbenchmarks), prints the
paper-vs-measured report, and asserts the reproduction is within
tolerance.
"""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentOutput


def run_experiment_bench(benchmark, run, seed: int = 0) -> ExperimentOutput:
    """Benchmark one experiment run and validate its rows."""
    output = benchmark.pedantic(run, args=(seed,), rounds=1, iterations=1)
    print()
    print(output.render())
    failing = [row.name for row in output.rows if not row.ok]
    assert output.passed, f"rows outside tolerance: {failing}"
    return output


@pytest.fixture(scope="session", autouse=True)
def warm_scenario_cache():
    """Pre-simulate the shared week so the first bench isn't charged for it."""
    from repro.workloads.scenarios import olygamer_scenario

    scenario = olygamer_scenario(seed=0)
    scenario.population  # force the session-level week
    yield


@pytest.fixture(scope="session", autouse=True)
def append_perf_trajectory():
    """Append one perf record to ``BENCH_obs_<runner>.json`` after the run.

    The record (kernel packets/s, warm cache hit rate, matchmaking
    attempts/s, plus versions and git rev) lands in an append-only file
    at the repo root, so successive bench runs accumulate a machine-
    readable performance trajectory.  Failure to measure must never fail
    the bench suite itself, hence the broad guard.
    """
    yield
    try:
        from repro.obs.bench import emit_bench_record

        path = emit_bench_record()
        print(f"\nperf trajectory appended: {path}")
    except Exception as error:  # pragma: no cover - best-effort telemetry
        print(f"\nperf trajectory skipped: {error!r}")
