"""Bench: columnar vs scalar matchmaking engine at 1e5 and 1e6 players.

The columnar engine (:mod:`repro.matchmaking.columnar`) batches the
epoch loop at provable no-contention points — full-facility refusal
spans, argmax fill spans, and the saturated departure/attempt
alternation window — falling back to the replicated scalar selection
only where contention makes per-attempt order load-bearing.  This
bench pins the speedup the ROADMAP §1 scale push bought: both engines
run the *same* saturated flash-crowd scenario (demand far above
capacity, the paper's busy-server regime) and the columnar result must
be bit-identical while clearing a ≥3x wall-clock floor at 10^6
players.

Wall-clock floors are deliberately conservative (CI machines are
noisy); the measured trajectory lives in ``BENCH_obs_*.json`` via
``repro.obs.bench``, which is where trend regressions show up.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.fleet.profiles import hosting_facility
from repro.matchmaking import PoolConfig, simulate_matchmaking
from repro.matchmaking.rtt import RttMatrix

#: Saturated flash-crowd: offered attempt load = 32x facility slots.
DEMAND_RATIO = 32.0
#: Long sessions keep the facility pinned at full between departures.
SESSION_MEAN_S = 900.0
SESSION_MIN_S = 5.0
EPOCH_S = 60.0
HORIZON_S = 1800.0

#: (pool size, servers, wall-clock floor) per tier.  The 1e6 tier is
#: the acceptance floor; 1e5 documents the small-pool behaviour (the
#: batched spans still win, but fixed per-epoch costs dilute the win).
TIERS = {
    "1e5": (100_000, 64, None),
    "1e6": (1_000_000, 512, 3.0),
}

POLICIES = ("least_loaded", "latency_aware")


def _scenario(pool_size: int, n_servers: int):
    fleet = hosting_facility(n_servers=n_servers, duration=HORIZON_S, seed=11)
    config = PoolConfig.for_fleet(
        fleet,
        pool_size=pool_size,
        demand_ratio=DEMAND_RATIO,
        epoch_length=EPOCH_S,
        session_duration_mean=SESSION_MEAN_S,
        session_duration_min=SESSION_MIN_S,
    )
    rtt = RttMatrix.for_fleet(fleet, config.region_profile, seed=11)
    return fleet, config, rtt


def _identical(a, b) -> bool:
    return (
        a.describe() == b.describe()
        and np.array_equal(a.occupancy, b.occupancy)
        and a.sessions == b.sessions
        and a.repeat_assignments == b.repeat_assignments
        and np.array_equal(a.per_server_attempts, b.per_server_attempts)
        and np.array_equal(
            a.per_server_rejections, b.per_server_rejections
        )
        and all(
            np.array_equal(u, v)
            for u, v in zip(a.session_rtts, b.session_rtts)
        )
    )


@pytest.mark.parametrize("tier", sorted(TIERS))
@pytest.mark.parametrize("policy", POLICIES)
def test_bench_columnar_vs_scalar(benchmark, tier, policy):
    """Columnar engine: bit-identical, ≥3x at 1e6 players."""
    pool_size, n_servers, floor = TIERS[tier]
    fleet, config, rtt = _scenario(pool_size, n_servers)

    # best-of-N on the floor tier, so a scheduler hiccup on a shared CI
    # runner cannot flip the ratio (the kernels-bench pattern; measured
    # ~4.2-4.5x against the 3x floor)
    rounds = 2 if floor is not None else 1

    scalar_wall = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        scalar = simulate_matchmaking(
            fleet, policy, config, rtt=rtt, engine="scalar"
        )
        scalar_wall = min(scalar_wall, time.perf_counter() - t0)

    def run_columnar():
        return simulate_matchmaking(
            fleet, policy, config, rtt=rtt, engine="columnar"
        )

    columnar_wall = float("inf")
    for _ in range(rounds - 1):
        t0 = time.perf_counter()
        run_columnar()
        columnar_wall = min(columnar_wall, time.perf_counter() - t0)
    t0 = time.perf_counter()
    columnar = benchmark.pedantic(run_columnar, rounds=1, iterations=1)
    columnar_wall = min(columnar_wall, time.perf_counter() - t0)

    # the saturated regime must actually refuse attempts — otherwise
    # the bench is measuring the wrong operating point
    assert scalar.admission.rejected > scalar.admission.admitted
    assert _identical(scalar, columnar)
    if floor is not None:
        speedup = scalar_wall / columnar_wall if columnar_wall > 0 else 0.0
        print(
            f"\n{policy} {tier}: scalar {scalar_wall:.2f}s, columnar "
            f"{columnar_wall:.2f}s -> {speedup:.1f}x"
        )
        assert speedup >= floor, (
            f"columnar speedup {speedup:.2f}x below {floor}x floor "
            f"(scalar {scalar_wall:.2f}s, columnar {columnar_wall:.2f}s)"
        )
