"""Bench: regenerate Table II — network usage information."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import table2


def test_bench_table2(benchmark):
    """Regenerates Table II — network usage information and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, table2.run)
