"""Bench: regenerate Fig 9 — 1s packet load with map-change dips."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import fig9


def test_bench_fig9(benchmark):
    """Regenerates Fig 9 — 1s packet load with map-change dips and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, fig9.run)
