"""Bench: regenerate Fig 4 — per-minute in/out bandwidth and packet load."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import fig4


def test_bench_fig4(benchmark):
    """Regenerates Fig 4 — per-minute in/out bandwidth and packet load and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, fig4.run)
