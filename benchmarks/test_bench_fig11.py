"""Bench: regenerate Fig 11 — client bandwidth histogram."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import fig11


def test_bench_fig11(benchmark):
    """Regenerates Fig 11 — client bandwidth histogram and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, fig11.run)
