"""Bench: regenerate Fig 10 — packet load at m=30min."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import fig10


def test_bench_fig10(benchmark):
    """Regenerates Fig 10 — packet load at m=30min and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, fig10.run)
