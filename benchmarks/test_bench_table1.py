"""Bench: regenerate Table I — general trace information."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import table1


def test_bench_table1(benchmark):
    """Regenerates Table I — general trace information and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, table1.run)
