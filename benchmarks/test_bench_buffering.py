"""Bench: regenerate X3 — buffering vs lookup-capacity ablation (§IV-A)."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import buffering


def test_bench_buffering(benchmark):
    """Regenerates X3 — buffering vs lookup-capacity ablation (§IV-A) and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, buffering.run)
