"""Bench: regenerate X4 — multi-server aggregation study (§IV)."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import aggregation


def test_bench_aggregation(benchmark):
    """Regenerates X4 — multi-server aggregation study (§IV) and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, aggregation.run)
