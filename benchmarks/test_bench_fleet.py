"""Bench: facility aggregation at N ∈ {4, 16} servers, serial vs sharded.

Each target simulates one day per server (session + count level) and
streams the per-server series into the facility aggregate.  The serial
and parallel variants produce bit-identical series (enforced in
``tests/test_fleet_execution.py``); on multi-core hardware the sharded
path must also win wall-clock at 16 servers.
"""

from __future__ import annotations

import time

import pytest

from repro.fleet import FleetScenario, hosting_facility
from repro.fleet.execution import available_cpus

#: One simulated day per server — heavy enough that per-server session
#: simulation dominates pool start-up.
HORIZON_S = 86400.0


def aggregate_facility(n_servers: int, workers: int):
    """Fresh scenario each time: benches measure cold aggregation."""
    fleet = hosting_facility(n_servers=n_servers, duration=HORIZON_S, seed=0)
    return FleetScenario(fleet).aggregate_per_second(workers=workers)


@pytest.mark.parametrize("n_servers", (4, 16))
def test_bench_fleet_serial(benchmark, n_servers):
    """Serial facility aggregation (one in-process worker)."""
    series = benchmark.pedantic(
        aggregate_facility, args=(n_servers, 1), rounds=1, iterations=1
    )
    assert len(series) == int(HORIZON_S)
    assert series.total_counts.sum() > 0


@pytest.mark.parametrize("n_servers", (4, 16))
def test_bench_fleet_parallel(benchmark, n_servers):
    """Sharded facility aggregation (process-pool workers)."""
    workers = max(2, min(n_servers, available_cpus()))
    series = benchmark.pedantic(
        aggregate_facility, args=(n_servers, workers), rounds=1, iterations=1
    )
    assert len(series) == int(HORIZON_S)
    assert series.total_counts.sum() > 0


@pytest.mark.skipif(
    # on 2-3 cores pool start-up and load noise can eat the margin and
    # flake; the claim is about genuinely multi-core hardware
    available_cpus() < 4,
    reason="parallel speedup assertion needs >= 4 cores",
)
def test_parallel_beats_serial_at_16_servers():
    """The scale-out payoff: sharding wins wall-clock at 16 servers."""
    start = time.perf_counter()
    aggregate_facility(16, workers=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    aggregate_facility(16, workers=min(16, available_cpus()))
    parallel_seconds = time.perf_counter() - start

    assert parallel_seconds < serial_seconds, (
        f"sharded run ({parallel_seconds:.2f}s) did not beat serial "
        f"({serial_seconds:.2f}s) on {available_cpus()} CPUs"
    )
