"""Bench: regenerate X6 — Borella-style source model fit + closure test (§IV-B)."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import sourcemodel


def test_bench_sourcemodel(benchmark):
    """Regenerates the source-model closure experiment and checks tolerance."""
    run_experiment_bench(benchmark, sourcemodel.run)
