"""Bench: regenerate Fig 3 — per-minute player count, whole week."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import fig3


def test_bench_fig3(benchmark):
    """Regenerates Fig 3 — per-minute player count, whole week and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, fig3.run)
