"""Bench: regenerate Fig 2 — per-minute packet load, whole week."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import fig2


def test_bench_fig2(benchmark):
    """Regenerates Fig 2 — per-minute packet load, whole week and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, fig2.run)
