"""Bench: regenerate Fig 13 — packet size CDFs."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import fig13


def test_bench_fig13(benchmark):
    """Regenerates Fig 13 — packet size CDFs and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, fig13.run)
