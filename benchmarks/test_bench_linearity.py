"""Bench: regenerate X2 — per-player linearity sweep (§III-B)."""

from benchmarks.conftest import run_experiment_bench
from repro.experiments import linearity


def test_bench_linearity(benchmark):
    """Regenerates X2 — per-player linearity sweep (§III-B) and checks paper-vs-measured tolerance."""
    run_experiment_bench(benchmark, linearity.run)
