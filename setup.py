"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` works on environments without the
``wheel`` package (PEP 660 editable installs require it).
"""

from setuptools import setup

setup()
