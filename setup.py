"""Setuptools packaging for the repro distribution.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) so that
``pip install -e . --no-use-pep517`` works on environments without the
``wheel`` package (PEP 660 editable installs require it).  The
``repro-experiments`` console script is the CLI documented in
EXPERIMENTS.md and the README examples.
"""

from setuptools import find_packages, setup

setup(
    name="repro-counterstrike",
    version="1.0.0",
    description=(
        "Reproduction of 'Provisioning On-line Games: A Traffic Analysis "
        "of a Busy Counter-Strike Server' (IMC 2002)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-analyze=repro.cli:analyze_main",
            "repro-experiments=repro.experiments.runner:main",
            "repro-simulate=repro.cli:main",
        ]
    },
)
